#ifndef EXTIDX_CARTRIDGE_VIR_VIR_CARTRIDGE_H_
#define EXTIDX_CARTRIDGE_VIR_VIR_CARTRIDGE_H_

#include <string>

#include "cartridge/vir/signature.h"
#include "core/odci.h"
#include "engine/connection.h"

namespace exi::vir {

// The Visual-Information-Retrieval cartridge (§3.2.3): content-based image
// search via VIRSimilar(img, query_img, weights, threshold), evaluated in
// three phases when the domain index is used —
//   phase 1: range query on the coarse index table (global-color mean
//            bucket window derived from the threshold; skipped when the
//            globalcolor weight is zero),
//   phase 2: coarse-vector distance filter (weighted L1 over per-group
//            means, sound because coarse distance <= true distance / 2),
//   phase 3: full signature comparison on the survivors.
// The functional implementation instead compares full signatures on every
// row — the pre-8i behavior the paper says made million-row tables
// infeasible.
//
// Index data layout (an IOT, §2.5 "index-organized tables are commonly
// used as index data stores"):
//   <index>$ctab (bucket INTEGER, rid INTEGER,
//                 m0 DOUBLE, m1 DOUBLE, m2 DOUBLE, m3 DOUBLE)
// where bucket quantizes the globalcolor coarse mean into kBuckets cells.
class VirIndexMethods : public OdciIndex {
 public:
  static constexpr int kBuckets = 100;

  // Insert writes only via IotUpsert and never reads its own writes; coarse
  // keys embed the rid, so index contents are insertion-order-insensitive.
  // Start precomputes into a private workspace; the shared phase-counter
  // snapshot is mutex-guarded (DESIGN.md §5).
  OdciCapabilities Capabilities() const override {
    return {/*parallel_build=*/true, /*parallel_scan=*/true};
  }

  const char* TraceLabel() const override { return "vir"; }

  Status Create(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status CreateStorage(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Alter(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Truncate(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Drop(const OdciIndexInfo& info, ServerContext& ctx) override;

  Status Insert(const OdciIndexInfo& info, RowId rid, const Value& new_value,
                ServerContext& ctx) override;
  Status Delete(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                ServerContext& ctx) override;
  Status Update(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                const Value& new_value, ServerContext& ctx) override;

  Result<OdciScanContext> Start(const OdciIndexInfo& info,
                                const OdciPredInfo& pred,
                                ServerContext& ctx) override;
  Status Fetch(const OdciIndexInfo& info, OdciScanContext& sctx,
               size_t max_rows, OdciFetchBatch* out,
               ServerContext& ctx) override;
  Status Close(const OdciIndexInfo& info, OdciScanContext& sctx,
               ServerContext& ctx) override;

  // Counters from the most recent successful Start call, exposing the
  // funnel of the multi-level filter for tests and benches (phase1
  // candidates -> phase2 survivors -> final matches).  Published atomically
  // under a mutex, so concurrent Starts never tear a snapshot — though
  // "last" is whichever Start finished most recently.
  struct PhaseCounters {
    uint64_t phase1_candidates = 0;
    uint64_t phase2_survivors = 0;
    uint64_t matches = 0;
  };
  static PhaseCounters last_counters();

 private:
  Status IndexSignature(const OdciIndexInfo& info, RowId rid,
                        const Signature& sig, ServerContext& ctx);
  Status UnindexSignature(const OdciIndexInfo& info, RowId rid,
                          const Signature& sig, ServerContext& ctx);
};

// ODCIStats for VIRSimilar: threshold-driven selectivity, bucket-window
// cost.
class VirStats : public OdciStats {
 public:
  Result<double> Selectivity(const OdciIndexInfo& info,
                             const OdciPredInfo& pred, uint64_t table_rows,
                             ServerContext& ctx) override;
  Result<double> IndexCost(const OdciIndexInfo& info,
                           const OdciPredInfo& pred, double selectivity,
                           uint64_t table_rows, ServerContext& ctx) override;
};

// Registers IMAGE_T, the IMAGE_T(d0..d15) constructor, the functional
// VIRSimilar implementation, and the DDL:
//   CREATE OPERATOR VIRSimilar BINDING (OBJECT IMAGE_T, OBJECT IMAGE_T,
//     VARCHAR, DOUBLE) RETURN BOOLEAN USING VIRSimilarFn;
//   CREATE INDEXTYPE VirIndexType FOR VIRSimilar(...) USING
//     VirIndexMethods;
Status InstallVirCartridge(Connection* conn);

}  // namespace exi::vir

#endif  // EXTIDX_CARTRIDGE_VIR_VIR_CARTRIDGE_H_
