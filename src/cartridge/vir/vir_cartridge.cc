#include "cartridge/vir/vir_cartridge.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "core/scan_context.h"

namespace exi::vir {

namespace {

std::string CoarseTableName(const std::string& index_name) {
  return index_name + "$ctab";
}

Schema CoarseTableSchema() {
  Schema schema;
  schema.AddColumn(Column{"bucket", DataType::Integer(), true});
  schema.AddColumn(Column{"rid", DataType::Integer(), true});
  schema.AddColumn(Column{"m0", DataType::Double(), true});
  schema.AddColumn(Column{"m1", DataType::Double(), true});
  schema.AddColumn(Column{"m2", DataType::Double(), true});
  schema.AddColumn(Column{"m3", DataType::Double(), true});
  return schema;
}

int64_t BucketOf(double coarse0) {
  double b = std::floor(coarse0 * VirIndexMethods::kBuckets);
  if (b < 0) b = 0;
  if (b > VirIndexMethods::kBuckets - 1) b = VirIndexMethods::kBuckets - 1;
  return int64_t(b);
}

struct VirScanWorkspace {
  // (rid, distance) pairs sorted by distance (most similar first).
  std::vector<std::pair<RowId, double>> matches;
  size_t pos = 0;
};

// Parses VIRSimilar scan arguments: (query image, weights, threshold).
Status ParseSimilarPred(const OdciPredInfo& pred, Signature* query,
                        Weights* weights, double* threshold) {
  if (pred.args.size() != 3) {
    return Status::InvalidArgument(
        "VIRSimilar index scan expects (image, weights, threshold)");
  }
  EXI_ASSIGN_OR_RETURN(*query, FromValue(pred.args[0]));
  if (pred.args[1].tag() != TypeTag::kVarchar) {
    return Status::InvalidArgument("VIRSimilar weights must be a string");
  }
  EXI_ASSIGN_OR_RETURN(*weights, ParseWeights(pred.args[1].AsVarchar()));
  if (!DataType(pred.args[2].tag()).is_numeric()) {
    return Status::InvalidArgument("VIRSimilar threshold must be numeric");
  }
  *threshold = pred.args[2].AsDouble();
  return Status::OK();
}

// Guarded: concurrent Starts (parallel_scan capability) publish their
// counter snapshots here; readers copy under the same mutex.
std::mutex g_counters_mu;
VirIndexMethods::PhaseCounters g_last_counters;

}  // namespace

VirIndexMethods::PhaseCounters VirIndexMethods::last_counters() {
  std::lock_guard<std::mutex> lock(g_counters_mu);
  return g_last_counters;
}

Status VirIndexMethods::IndexSignature(const OdciIndexInfo& info, RowId rid,
                                       const Signature& sig,
                                       ServerContext& ctx) {
  std::array<double, kGroups> coarse = Coarse(sig);
  return ctx.IotUpsert(CoarseTableName(info.index_name),
                       {Value::Integer(BucketOf(coarse[0])),
                        Value::Integer(int64_t(rid)),
                        Value::Double(coarse[0]), Value::Double(coarse[1]),
                        Value::Double(coarse[2]), Value::Double(coarse[3])});
}

Status VirIndexMethods::UnindexSignature(const OdciIndexInfo& info,
                                         RowId rid, const Signature& sig,
                                         ServerContext& ctx) {
  std::array<double, kGroups> coarse = Coarse(sig);
  return ctx.IotDelete(
      CoarseTableName(info.index_name),
      {Value::Integer(BucketOf(coarse[0])), Value::Integer(int64_t(rid))});
}

Status VirIndexMethods::Create(const OdciIndexInfo& info,
                               ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(CreateStorage(info, ctx));
  int col = info.indexed_position();
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        inner = Insert(info, rid, row[col], ctx);
        return inner.ok();
      }));
  return inner;
}

Status VirIndexMethods::CreateStorage(const OdciIndexInfo& info,
                                      ServerContext& ctx) {
  return ctx.CreateIot(CoarseTableName(info.index_name), CoarseTableSchema(),
                       2);
}

Status VirIndexMethods::Alter(const OdciIndexInfo& info, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return Status::OK();
}

Status VirIndexMethods::Truncate(const OdciIndexInfo& info,
                                 ServerContext& ctx) {
  return ctx.IotTruncate(CoarseTableName(info.index_name));
}

Status VirIndexMethods::Drop(const OdciIndexInfo& info, ServerContext& ctx) {
  return ctx.DropIot(CoarseTableName(info.index_name));
}

Status VirIndexMethods::Insert(const OdciIndexInfo& info, RowId rid,
                               const Value& new_value, ServerContext& ctx) {
  if (new_value.is_null()) return Status::OK();
  EXI_ASSIGN_OR_RETURN(Signature sig, FromValue(new_value));
  return IndexSignature(info, rid, sig, ctx);
}

Status VirIndexMethods::Delete(const OdciIndexInfo& info, RowId rid,
                               const Value& old_value, ServerContext& ctx) {
  if (old_value.is_null()) return Status::OK();
  EXI_ASSIGN_OR_RETURN(Signature sig, FromValue(old_value));
  return UnindexSignature(info, rid, sig, ctx);
}

Status VirIndexMethods::Update(const OdciIndexInfo& info, RowId rid,
                               const Value& old_value,
                               const Value& new_value, ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(Delete(info, rid, old_value, ctx));
  return Insert(info, rid, new_value, ctx);
}

Result<OdciScanContext> VirIndexMethods::Start(const OdciIndexInfo& info,
                                               const OdciPredInfo& pred,
                                               ServerContext& ctx) {
  Signature query;
  Weights weights;
  double threshold;
  EXI_RETURN_IF_ERROR(ParseSimilarPred(pred, &query, &weights, &threshold));
  std::array<double, kGroups> qcoarse = Coarse(query);
  std::string iot = CoarseTableName(info.index_name);
  PhaseCounters counters;

  // ---- Phase 1: bucket-window range query on the coarse index table.
  // |mean0(a) - mean0(q)| <= distance/(2*w0), so matches lie within a
  // window of radius threshold/(2*w0) around the query's mean0.  With
  // w0 == 0 the window is unbounded and phase 1 degenerates to a full
  // coarse-table scan (still phases 2-3 filtered).
  int64_t lo_bucket = 0;
  int64_t hi_bucket = kBuckets - 1;
  if (weights.w[0] > 0.0) {
    double radius = threshold / (2.0 * weights.w[0]);
    lo_bucket = BucketOf(qcoarse[0] - radius);
    hi_bucket = BucketOf(qcoarse[0] + radius);
  }
  struct Candidate {
    RowId rid;
    std::array<double, kGroups> coarse;
  };
  std::vector<Candidate> phase1;
  CompositeKey lo = {Value::Integer(lo_bucket)};
  CompositeKey hi = {Value::Integer(hi_bucket),
                     Value::Integer(int64_t(~0ULL >> 1))};
  EXI_RETURN_IF_ERROR(ctx.IotScanRange(
      iot, &lo, true, &hi, true, [&phase1](const Row& row) {
        Candidate c;
        c.rid = RowId(row[1].AsInteger());
        c.coarse = {row[2].AsDouble(), row[3].AsDouble(),
                    row[4].AsDouble(), row[5].AsDouble()};
        phase1.push_back(c);
        return true;
      }));
  counters.phase1_candidates = phase1.size();

  // ---- Phase 2: coarse-distance filter.  For any true match,
  // CoarseDistance(a,q) <= Distance(a,q)/2 <= threshold/2, so this filter
  // admits no false negatives.
  std::vector<Candidate> phase2;
  for (const Candidate& c : phase1) {
    if (CoarseDistance(c.coarse, qcoarse, weights) <= threshold / 2.0) {
      phase2.push_back(c);
    }
  }
  counters.phase2_survivors = phase2.size();

  // ---- Phase 3: full signature comparison.
  int col = info.indexed_position();
  auto ws = std::make_shared<VirScanWorkspace>();
  for (const Candidate& c : phase2) {
    Result<Row> row = ctx.GetBaseTableRow(info.table_name, c.rid);
    if (!row.ok()) continue;
    const Value& v = (*row)[col];
    if (v.is_null()) continue;
    EXI_ASSIGN_OR_RETURN(Signature sig, FromValue(v));
    double d = Distance(sig, query, weights);
    if (d <= threshold) ws->matches.emplace_back(c.rid, d);
  }
  // Ranking over the whole result set — the Precompute-All exemplar
  // (§2.2.3: "operators involving some sort of ranking ... require looking
  // at the entire result set").
  std::sort(ws->matches.begin(), ws->matches.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  counters.matches = ws->matches.size();
  {
    std::lock_guard<std::mutex> lock(g_counters_mu);
    g_last_counters = counters;
  }

  OdciScanContext sctx;
  sctx.handle = ScanWorkspaceRegistry::Global().Allocate(ws);
  return sctx;
}

Status VirIndexMethods::Fetch(const OdciIndexInfo& info,
                              OdciScanContext& sctx, size_t max_rows,
                              OdciFetchBatch* out, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  EXI_ASSIGN_OR_RETURN(
      std::shared_ptr<VirScanWorkspace> ws,
      ScanWorkspaceRegistry::Global().GetAs<VirScanWorkspace>(sctx.handle));
  size_t end = std::min(ws->matches.size(), ws->pos + max_rows);
  for (size_t i = ws->pos; i < end; ++i) {
    out->rids.push_back(ws->matches[i].first);
    out->ancillary.push_back(Value::Double(ws->matches[i].second));
  }
  ws->pos = end;
  return Status::OK();
}

Status VirIndexMethods::Close(const OdciIndexInfo& info,
                              OdciScanContext& sctx, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  if (sctx.uses_handle()) {
    return ScanWorkspaceRegistry::Global().Release(sctx.handle);
  }
  return Status::OK();
}

// ---- stats ----

Result<double> VirStats::Selectivity(const OdciIndexInfo& info,
                                     const OdciPredInfo& pred,
                                     uint64_t table_rows,
                                     ServerContext& ctx) {
  (void)info;
  (void)ctx;
  (void)table_rows;
  Signature query;
  Weights weights;
  double threshold;
  Status st = ParseSimilarPred(pred, &query, &weights, &threshold);
  if (!st.ok()) return 0.01;
  // Smaller thresholds are sharply more selective; signatures live in
  // [0,1]^16 so a weighted distance budget of `total()` is ~everything.
  double sel = threshold / (weights.total() + 1e-9);
  sel = sel * sel;  // volume shrinks superlinearly with radius
  if (sel < 1e-6) sel = 1e-6;
  if (sel > 1.0) sel = 1.0;
  return sel;
}

Result<double> VirStats::IndexCost(const OdciIndexInfo& info,
                                   const OdciPredInfo& pred,
                                   double selectivity, uint64_t table_rows,
                                   ServerContext& ctx) {
  (void)info;
  (void)ctx;
  Signature query;
  Weights weights;
  double threshold;
  double window = 1.0;
  if (ParseSimilarPred(pred, &query, &weights, &threshold).ok() &&
      weights.w[0] > 0.0) {
    window = std::min(1.0, threshold / weights.w[0]);
  }
  // Phase-1 rows scanned + phase-3 fetches.
  return 10.0 + window * double(table_rows) * 0.3 +
         selectivity * double(table_rows) * 2.0;
}

// ---- installation ----

Status InstallVirCartridge(Connection* conn) {
  Catalog& catalog = conn->db()->catalog();
  EXI_RETURN_IF_ERROR(catalog.RegisterObjectType(ImageTypeDef()));

  // IMAGE_T(d0, ..., d15) constructor.
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "IMAGE_T", [](const ValueList& args) -> Result<Value> {
        if (args.size() != kSignatureDims) {
          return Status::InvalidArgument("IMAGE_T expects " +
                                         std::to_string(kSignatureDims) +
                                         " numbers");
        }
        Signature sig;
        for (size_t i = 0; i < kSignatureDims; ++i) {
          if (args[i].is_null() || !DataType(args[i].tag()).is_numeric()) {
            return Status::TypeMismatch("IMAGE_T expects numbers");
          }
          sig[i] = args[i].AsDouble();
        }
        return ToValue(sig);
      }));

  // Functional VIRSimilar: full signature comparison per row (§3.2.3
  // pre-8i behavior).
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "VIRSimilarFn", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 4) {
          return Status::InvalidArgument("VIRSimilar expects 4 arguments");
        }
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        EXI_ASSIGN_OR_RETURN(Signature a, FromValue(args[0]));
        EXI_ASSIGN_OR_RETURN(Signature b, FromValue(args[1]));
        if (args[2].tag() != TypeTag::kVarchar ||
            !DataType(args[3].tag()).is_numeric()) {
          return Status::TypeMismatch(
              "VIRSimilar expects (image, image, weights, threshold)");
        }
        EXI_ASSIGN_OR_RETURN(Weights w,
                             ParseWeights(args[2].AsVarchar()));
        return Value::Boolean(Distance(a, b, w) <= args[3].AsDouble());
      }));

  EXI_RETURN_IF_ERROR(catalog.implementations().Register(
      "VirIndexMethods", [] { return std::make_shared<VirIndexMethods>(); },
      [] { return std::make_shared<VirStats>(); }));

  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE OPERATOR VIRSimilar BINDING (OBJECT IMAGE_T, "
                    "OBJECT IMAGE_T, VARCHAR, DOUBLE) RETURN BOOLEAN USING "
                    "VIRSimilarFn")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEXTYPE VirIndexType FOR VIRSimilar(OBJECT "
                    "IMAGE_T, OBJECT IMAGE_T, VARCHAR, DOUBLE) USING "
                    "VirIndexMethods")
          .status());
  return Status::OK();
}

}  // namespace exi::vir
