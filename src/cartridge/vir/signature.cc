#include "cartridge/vir/signature.h"

#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace exi::vir {

Result<Weights> ParseWeights(const std::string& text) {
  Weights weights;
  if (Trim(text).empty()) return weights;
  for (const std::string& piece : SplitAny(text, ",; ")) {
    std::vector<std::string> kv = SplitAny(piece, "=");
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad weight assignment: " + piece);
    }
    std::string key = ToLower(kv[0]);
    double value = std::strtod(kv[1].c_str(), nullptr);
    if (value < 0.0) {
      return Status::InvalidArgument("negative weight: " + piece);
    }
    bool known = false;
    for (size_t g = 0; g < kGroups; ++g) {
      if (key == kGroupNames[g]) {
        weights.w[g] = value;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown weight group: " + key);
    }
  }
  if (weights.total() <= 0.0) {
    return Status::InvalidArgument("all weights are zero: " + text);
  }
  return weights;
}

double Distance(const Signature& a, const Signature& b, const Weights& w) {
  double total = 0.0;
  for (size_t g = 0; g < kGroups; ++g) {
    if (w.w[g] == 0.0) continue;
    double sq = 0.0;
    for (size_t i = 0; i < kDimsPerGroup; ++i) {
      double d = a[g * kDimsPerGroup + i] - b[g * kDimsPerGroup + i];
      sq += d * d;
    }
    total += w.w[g] * std::sqrt(sq);
  }
  return total;
}

std::array<double, kGroups> Coarse(const Signature& sig) {
  std::array<double, kGroups> out{};
  for (size_t g = 0; g < kGroups; ++g) {
    double sum = 0.0;
    for (size_t i = 0; i < kDimsPerGroup; ++i) {
      sum += sig[g * kDimsPerGroup + i];
    }
    out[g] = sum / double(kDimsPerGroup);
  }
  return out;
}

double CoarseDistance(const std::array<double, kGroups>& a,
                      const std::array<double, kGroups>& b,
                      const Weights& w) {
  double total = 0.0;
  for (size_t g = 0; g < kGroups; ++g) {
    total += w.w[g] * std::fabs(a[g] - b[g]);
  }
  return total;
}

ObjectTypeDef ImageTypeDef() {
  ObjectTypeDef def;
  def.name = kImageTypeName;
  def.attributes = {{"signature", DataType::Varray(TypeTag::kDouble)}};
  return def;
}

Value ToValue(const Signature& sig) {
  ValueList elems;
  elems.reserve(kSignatureDims);
  for (double d : sig) elems.push_back(Value::Double(d));
  return Value::Object(kImageTypeName, {Value::Varray(std::move(elems))});
}

Result<Signature> FromValue(const Value& v) {
  if (v.tag() != TypeTag::kObject ||
      !EqualsIgnoreCase(v.AsObject().type_name, kImageTypeName) ||
      v.AsObject().attributes.size() != 1 ||
      v.AsObject().attributes[0].tag() != TypeTag::kVarray) {
    return Status::TypeMismatch("expected an IMAGE_T value, got " +
                                v.ToString());
  }
  const ValueList& elems = v.AsObject().attributes[0].AsVarray();
  if (elems.size() != kSignatureDims) {
    return Status::InvalidArgument("IMAGE_T signature must have " +
                                   std::to_string(kSignatureDims) +
                                   " values");
  }
  Signature sig;
  for (size_t i = 0; i < kSignatureDims; ++i) {
    sig[i] = elems[i].AsDouble();
  }
  return sig;
}

}  // namespace exi::vir
