#ifndef EXTIDX_CARTRIDGE_DOMAIN_BTREE_DOMAIN_BTREE_H_
#define EXTIDX_CARTRIDGE_DOMAIN_BTREE_DOMAIN_BTREE_H_

#include <string>

#include "core/odci.h"
#include "engine/connection.h"

namespace exi::dbt {

// A B-tree re-implemented *through* the extensible indexing framework:
// the same ordered-key access structure the engine has natively, but with
// index data in an IOT and every operation dispatched through ODCIIndex
// routines and SQL callbacks.  This is the ablation for the paper's §4
// design argument — integrating access methods via SQL callbacks instead
// of low-level interfaces "can cause performance degradation" that batch
// interfaces keep tolerable.  Experiment E10 measures that overhead
// against the native B-tree.
//
// Operators (on INTEGER/DOUBLE columns):
//   DEq(col, v)          value equality
//   DBetween(col, lo, hi) closed-range membership
class DomainBtreeMethods : public OdciIndex {
 public:
  const char* TraceLabel() const override { return "domain_btree"; }

  Status Create(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Alter(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Truncate(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Drop(const OdciIndexInfo& info, ServerContext& ctx) override;

  Status Insert(const OdciIndexInfo& info, RowId rid, const Value& new_value,
                ServerContext& ctx) override;
  Status Delete(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                ServerContext& ctx) override;
  Status Update(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                const Value& new_value, ServerContext& ctx) override;

  Result<OdciScanContext> Start(const OdciIndexInfo& info,
                                const OdciPredInfo& pred,
                                ServerContext& ctx) override;
  Status Fetch(const OdciIndexInfo& info, OdciScanContext& sctx,
               size_t max_rows, OdciFetchBatch* out,
               ServerContext& ctx) override;
  Status Close(const OdciIndexInfo& info, OdciScanContext& sctx,
               ServerContext& ctx) override;
};

class DomainBtreeStats : public OdciStats {
 public:
  Result<double> Selectivity(const OdciIndexInfo& info,
                             const OdciPredInfo& pred, uint64_t table_rows,
                             ServerContext& ctx) override;
  Result<double> IndexCost(const OdciIndexInfo& info,
                           const OdciPredInfo& pred, double selectivity,
                           uint64_t table_rows, ServerContext& ctx) override;
};

// Registers DEqFn/DBetweenFn and:
//   CREATE OPERATOR DEq BINDING (INTEGER, INTEGER) RETURN BOOLEAN ...
//   CREATE OPERATOR DBetween BINDING (INTEGER, INTEGER, INTEGER) ...
//   CREATE INDEXTYPE DomainBtreeType FOR DEq(...), DBetween(...) USING
//     DomainBtreeMethods;
Status InstallDomainBtreeCartridge(Connection* conn);

}  // namespace exi::dbt

#endif  // EXTIDX_CARTRIDGE_DOMAIN_BTREE_DOMAIN_BTREE_H_
