#include "cartridge/domain_btree/domain_btree.h"

#include <algorithm>

#include "common/strings.h"
#include "core/scan_context.h"

namespace exi::dbt {

namespace {

std::string KeyTableName(const std::string& index_name) {
  return index_name + "$ktab";
}

Schema KeyTableSchema() {
  Schema schema;
  schema.AddColumn(Column{"val", DataType::Double(), true});
  schema.AddColumn(Column{"rid", DataType::Integer(), true});
  return schema;
}

// Incremental scan workspace: resumes the IOT cursor after the last
// returned (val, rid) key — the incremental-computation shape (§2.2.3),
// natural for an ordered structure.
struct DbtScanWorkspace {
  double lo = 0.0;
  double hi = 0.0;
  bool started = false;
  double last_val = 0.0;
  RowId last_rid = 0;
};

}  // namespace

Status DomainBtreeMethods::Create(const OdciIndexInfo& info,
                                  ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(
      ctx.CreateIot(KeyTableName(info.index_name), KeyTableSchema(), 2));
  int col = info.indexed_position();
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        const Value& v = row[col];
        if (v.is_null()) return true;
        inner = ctx.IotUpsert(KeyTableName(info.index_name),
                              {Value::Double(v.AsDouble()),
                               Value::Integer(int64_t(rid))});
        return inner.ok();
      }));
  return inner;
}

Status DomainBtreeMethods::Alter(const OdciIndexInfo& info,
                                 ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return Status::OK();
}

Status DomainBtreeMethods::Truncate(const OdciIndexInfo& info,
                                    ServerContext& ctx) {
  return ctx.IotTruncate(KeyTableName(info.index_name));
}

Status DomainBtreeMethods::Drop(const OdciIndexInfo& info,
                                ServerContext& ctx) {
  return ctx.DropIot(KeyTableName(info.index_name));
}

Status DomainBtreeMethods::Insert(const OdciIndexInfo& info, RowId rid,
                                  const Value& new_value,
                                  ServerContext& ctx) {
  if (new_value.is_null()) return Status::OK();
  return ctx.IotUpsert(
      KeyTableName(info.index_name),
      {Value::Double(new_value.AsDouble()), Value::Integer(int64_t(rid))});
}

Status DomainBtreeMethods::Delete(const OdciIndexInfo& info, RowId rid,
                                  const Value& old_value,
                                  ServerContext& ctx) {
  if (old_value.is_null()) return Status::OK();
  return ctx.IotDelete(
      KeyTableName(info.index_name),
      {Value::Double(old_value.AsDouble()), Value::Integer(int64_t(rid))});
}

Status DomainBtreeMethods::Update(const OdciIndexInfo& info, RowId rid,
                                  const Value& old_value,
                                  const Value& new_value,
                                  ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(Delete(info, rid, old_value, ctx));
  return Insert(info, rid, new_value, ctx);
}

Result<OdciScanContext> DomainBtreeMethods::Start(const OdciIndexInfo& info,
                                                  const OdciPredInfo& pred,
                                                  ServerContext& ctx) {
  (void)info;
  (void)ctx;
  auto ws = std::make_shared<DbtScanWorkspace>();
  if (EqualsIgnoreCase(pred.operator_name, "DEq")) {
    if (pred.args.size() != 1 ||
        !DataType(pred.args[0].tag()).is_numeric()) {
      return Status::InvalidArgument("DEq expects one numeric argument");
    }
    ws->lo = pred.args[0].AsDouble();
    ws->hi = ws->lo;
  } else if (EqualsIgnoreCase(pred.operator_name, "DBetween")) {
    if (pred.args.size() != 2 ||
        !DataType(pred.args[0].tag()).is_numeric() ||
        !DataType(pred.args[1].tag()).is_numeric()) {
      return Status::InvalidArgument(
          "DBetween expects two numeric arguments");
    }
    ws->lo = pred.args[0].AsDouble();
    ws->hi = pred.args[1].AsDouble();
  } else {
    return Status::NotSupported("domain btree cannot evaluate " +
                                pred.operator_name);
  }
  OdciScanContext sctx;
  sctx.handle = ScanWorkspaceRegistry::Global().Allocate(ws);
  return sctx;
}

Status DomainBtreeMethods::Fetch(const OdciIndexInfo& info,
                                 OdciScanContext& sctx, size_t max_rows,
                                 OdciFetchBatch* out, ServerContext& ctx) {
  EXI_ASSIGN_OR_RETURN(
      std::shared_ptr<DbtScanWorkspace> ws,
      ScanWorkspaceRegistry::Global().GetAs<DbtScanWorkspace>(sctx.handle));
  CompositeKey resume = {Value::Double(ws->last_val),
                         Value::Integer(int64_t(ws->last_rid))};
  CompositeKey start = {Value::Double(ws->lo)};
  CompositeKey hi = {Value::Double(ws->hi),
                     Value::Integer(int64_t(~0ULL >> 1))};
  const CompositeKey* lo_key = ws->started ? &resume : &start;
  EXI_RETURN_IF_ERROR(ctx.IotScanRange(
      KeyTableName(info.index_name), lo_key,
      /*lo_inclusive=*/!ws->started, &hi, true, [&](const Row& row) {
        out->rids.push_back(RowId(row[1].AsInteger()));
        ws->last_val = row[0].AsDouble();
        ws->last_rid = RowId(row[1].AsInteger());
        return out->rids.size() < max_rows;
      }));
  if (!out->rids.empty()) ws->started = true;
  return Status::OK();
}

Status DomainBtreeMethods::Close(const OdciIndexInfo& info,
                                 OdciScanContext& sctx, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  if (sctx.uses_handle()) {
    return ScanWorkspaceRegistry::Global().Release(sctx.handle);
  }
  return Status::OK();
}

Result<double> DomainBtreeStats::Selectivity(const OdciIndexInfo& info,
                                             const OdciPredInfo& pred,
                                             uint64_t table_rows,
                                             ServerContext& ctx) {
  (void)info;
  (void)ctx;
  if (table_rows == 0) return 0.0;
  if (EqualsIgnoreCase(pred.operator_name, "DEq")) {
    return 1.0 / double(table_rows);
  }
  return 0.1;  // range default
}

Result<double> DomainBtreeStats::IndexCost(const OdciIndexInfo& info,
                                           const OdciPredInfo& pred,
                                           double selectivity,
                                           uint64_t table_rows,
                                           ServerContext& ctx) {
  (void)info;
  (void)pred;
  (void)ctx;
  return 10.0 + selectivity * double(table_rows);
}

Status InstallDomainBtreeCartridge(Connection* conn) {
  Catalog& catalog = conn->db()->catalog();
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "DEqFn", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("DEq expects 2 arguments");
        }
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        return Value::Boolean(args[0].AsDouble() == args[1].AsDouble());
      }));
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "DBetweenFn", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 3) {
          return Status::InvalidArgument("DBetween expects 3 arguments");
        }
        if (args[0].is_null() || args[1].is_null() || args[2].is_null()) {
          return Value::Null();
        }
        double v = args[0].AsDouble();
        return Value::Boolean(v >= args[1].AsDouble() &&
                              v <= args[2].AsDouble());
      }));
  EXI_RETURN_IF_ERROR(catalog.implementations().Register(
      "DomainBtreeMethods",
      [] { return std::make_shared<DomainBtreeMethods>(); },
      [] { return std::make_shared<DomainBtreeStats>(); }));
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE OPERATOR DEq BINDING (DOUBLE, DOUBLE) RETURN "
                    "BOOLEAN USING DEqFn")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE OPERATOR DBetween BINDING (DOUBLE, DOUBLE, "
                    "DOUBLE) RETURN BOOLEAN USING DBetweenFn")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEXTYPE DomainBtreeType FOR DEq(DOUBLE, "
                    "DOUBLE), DBetween(DOUBLE, DOUBLE, DOUBLE) USING "
                    "DomainBtreeMethods")
          .status());
  return Status::OK();
}

}  // namespace exi::dbt
