#include "cartridge/varray/varray_cartridge.h"

#include <algorithm>
#include <set>

#include "core/scan_context.h"

namespace exi::varr {

namespace {

std::string ElemTableName(const std::string& index_name) {
  return index_name + "$etab";
}

Schema ElemTableSchema() {
  Schema schema;
  schema.AddColumn(Column{"elem", DataType::Varchar(256), true});
  schema.AddColumn(Column{"rid", DataType::Integer(), true});
  return schema;
}

struct VarrayScanWorkspace {
  std::vector<RowId> matches;
  size_t pos = 0;
};

// Distinct string elements of a VARRAY value.
std::set<std::string> ElementsOf(const Value& v) {
  std::set<std::string> out;
  if (v.tag() != TypeTag::kVarray) return out;
  for (const Value& e : v.AsVarray()) {
    if (!e.is_null() && e.tag() == TypeTag::kVarchar) {
      out.insert(e.AsVarchar());
    }
  }
  return out;
}

}  // namespace

Status VarrayIndexMethods::Create(const OdciIndexInfo& info,
                                  ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(
      ctx.CreateIot(ElemTableName(info.index_name), ElemTableSchema(), 2));
  int col = info.indexed_position();
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        for (const std::string& elem : ElementsOf(row[col])) {
          inner = ctx.IotUpsert(ElemTableName(info.index_name),
                                {Value::Varchar(elem),
                                 Value::Integer(int64_t(rid))});
          if (!inner.ok()) return false;
        }
        return true;
      }));
  return inner;
}

Status VarrayIndexMethods::Alter(const OdciIndexInfo& info,
                                 ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return Status::OK();
}

Status VarrayIndexMethods::Truncate(const OdciIndexInfo& info,
                                    ServerContext& ctx) {
  return ctx.IotTruncate(ElemTableName(info.index_name));
}

Status VarrayIndexMethods::Drop(const OdciIndexInfo& info,
                                ServerContext& ctx) {
  return ctx.DropIot(ElemTableName(info.index_name));
}

Status VarrayIndexMethods::Insert(const OdciIndexInfo& info, RowId rid,
                                  const Value& new_value,
                                  ServerContext& ctx) {
  for (const std::string& elem : ElementsOf(new_value)) {
    EXI_RETURN_IF_ERROR(ctx.IotUpsert(
        ElemTableName(info.index_name),
        {Value::Varchar(elem), Value::Integer(int64_t(rid))}));
  }
  return Status::OK();
}

Status VarrayIndexMethods::Delete(const OdciIndexInfo& info, RowId rid,
                                  const Value& old_value,
                                  ServerContext& ctx) {
  for (const std::string& elem : ElementsOf(old_value)) {
    EXI_RETURN_IF_ERROR(ctx.IotDelete(
        ElemTableName(info.index_name),
        {Value::Varchar(elem), Value::Integer(int64_t(rid))}));
  }
  return Status::OK();
}

Status VarrayIndexMethods::Update(const OdciIndexInfo& info, RowId rid,
                                  const Value& old_value,
                                  const Value& new_value,
                                  ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(Delete(info, rid, old_value, ctx));
  return Insert(info, rid, new_value, ctx);
}

Result<OdciScanContext> VarrayIndexMethods::Start(const OdciIndexInfo& info,
                                                  const OdciPredInfo& pred,
                                                  ServerContext& ctx) {
  if (pred.args.size() != 1 || pred.args[0].tag() != TypeTag::kVarchar) {
    return Status::InvalidArgument(
        "VContains index scan expects one string element");
  }
  auto ws = std::make_shared<VarrayScanWorkspace>();
  EXI_RETURN_IF_ERROR(ctx.IotScanPrefix(
      ElemTableName(info.index_name),
      {Value::Varchar(pred.args[0].AsVarchar())}, [&](const Row& row) {
        ws->matches.push_back(RowId(row[1].AsInteger()));
        return true;
      }));
  OdciScanContext sctx;
  sctx.handle = ScanWorkspaceRegistry::Global().Allocate(ws);
  return sctx;
}

Status VarrayIndexMethods::Fetch(const OdciIndexInfo& info,
                                 OdciScanContext& sctx, size_t max_rows,
                                 OdciFetchBatch* out, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  EXI_ASSIGN_OR_RETURN(std::shared_ptr<VarrayScanWorkspace> ws,
                       ScanWorkspaceRegistry::Global()
                           .GetAs<VarrayScanWorkspace>(sctx.handle));
  size_t end = std::min(ws->matches.size(), ws->pos + max_rows);
  for (size_t i = ws->pos; i < end; ++i) {
    out->rids.push_back(ws->matches[i]);
  }
  ws->pos = end;
  return Status::OK();
}

Status VarrayIndexMethods::Close(const OdciIndexInfo& info,
                                 OdciScanContext& sctx, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  if (sctx.uses_handle()) {
    return ScanWorkspaceRegistry::Global().Release(sctx.handle);
  }
  return Status::OK();
}

Status InstallVarrayCartridge(Connection* conn) {
  Catalog& catalog = conn->db()->catalog();

  // VARRAY('a', 'b', ...) constructor for SQL literals.
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "VARRAY_OF", [](const ValueList& args) -> Result<Value> {
        ValueList elems = args;
        return Value::Varray(std::move(elems));
      }));

  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "VContainsFn", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("VContains expects 2 arguments");
        }
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        if (args[0].tag() != TypeTag::kVarray) {
          return Status::TypeMismatch("VContains expects a VARRAY");
        }
        for (const Value& e : args[0].AsVarray()) {
          if (e.Equals(args[1])) return Value::Boolean(true);
        }
        return Value::Boolean(false);
      }));

  EXI_RETURN_IF_ERROR(catalog.implementations().Register(
      "VarrayIndexMethods",
      [] { return std::make_shared<VarrayIndexMethods>(); }));

  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE OPERATOR VContains BINDING (VARRAY OF VARCHAR, "
                    "VARCHAR) RETURN BOOLEAN USING VContainsFn")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEXTYPE VarrayIndexType FOR VContains(VARRAY "
                    "OF VARCHAR, VARCHAR) USING VarrayIndexMethods")
          .status());
  return Status::OK();
}

}  // namespace exi::varr
