#ifndef EXTIDX_CARTRIDGE_VARRAY_VARRAY_CARTRIDGE_H_
#define EXTIDX_CARTRIDGE_VARRAY_VARRAY_CARTRIDGE_H_

#include <string>

#include "core/odci.h"
#include "engine/connection.h"

namespace exi::varr {

// Collection indexing (§3.1): "In Oracle8i, collection type columns cannot
// be indexed using built-in indexing schemes."  This indextype implements
// the paper's example —
//
//   Contains(VARRAY, elem_value): TRUE if the VARRAY contains an element
//   with the value elem_value
//   SELECT * FROM Employees WHERE Contains(Hobbies, 'Skiing');
//
// The operator is named VContains (the text cartridge owns Contains); the
// index is an element->rowid IOT maintained from the collection values.
class VarrayIndexMethods : public OdciIndex {
 public:
  const char* TraceLabel() const override { return "varray"; }

  Status Create(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Alter(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Truncate(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Drop(const OdciIndexInfo& info, ServerContext& ctx) override;

  Status Insert(const OdciIndexInfo& info, RowId rid, const Value& new_value,
                ServerContext& ctx) override;
  Status Delete(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                ServerContext& ctx) override;
  Status Update(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                const Value& new_value, ServerContext& ctx) override;

  Result<OdciScanContext> Start(const OdciIndexInfo& info,
                                const OdciPredInfo& pred,
                                ServerContext& ctx) override;
  Status Fetch(const OdciIndexInfo& info, OdciScanContext& sctx,
               size_t max_rows, OdciFetchBatch* out,
               ServerContext& ctx) override;
  Status Close(const OdciIndexInfo& info, OdciScanContext& sctx,
               ServerContext& ctx) override;
};

// Registers VContainsFn, a VARRAY(...) constructor function, and:
//   CREATE OPERATOR VContains BINDING (VARRAY OF VARCHAR, VARCHAR)
//     RETURN BOOLEAN USING VContainsFn;
//   CREATE INDEXTYPE VarrayIndexType FOR VContains(VARRAY OF VARCHAR,
//     VARCHAR) USING VarrayIndexMethods;
Status InstallVarrayCartridge(Connection* conn);

}  // namespace exi::varr

#endif  // EXTIDX_CARTRIDGE_VARRAY_VARRAY_CARTRIDGE_H_
