#include "cartridge/spatial/rtree.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace exi::spatial {

namespace {

constexpr uint32_t kMagic = 0x52545245;  // "RTRE"

Geometry Union(const Geometry& a, const Geometry& b) {
  Geometry u;
  u.xmin = std::min(a.xmin, b.xmin);
  u.ymin = std::min(a.ymin, b.ymin);
  u.xmax = std::max(a.xmax, b.xmax);
  u.ymax = std::max(a.ymax, b.ymax);
  return u;
}

double Enlargement(const Geometry& mbr, const Geometry& add) {
  return Union(mbr, add).Area() - mbr.Area();
}

template <typename T>
void Put(std::vector<uint8_t>* buf, size_t offset, const T& v) {
  std::memcpy(buf->data() + offset, &v, sizeof(T));
}

template <typename T>
T Get(const std::vector<uint8_t>& buf, size_t offset) {
  T v;
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;
}

}  // namespace

Geometry LobRTree::Node::Mbr() const {
  Geometry mbr = entries.empty() ? Geometry{0, 0, 0, 0} : entries[0].rect;
  for (size_t i = 1; i < entries.size(); ++i) {
    mbr = Union(mbr, entries[i].rect);
  }
  return mbr;
}

// ---- page I/O ----

Result<LobRTree::Meta> LobRTree::ReadMeta() const {
  EXI_ASSIGN_OR_RETURN(std::vector<uint8_t> page,
                       ctx_->ReadLob(lob_, 0, kPageSize));
  if (page.size() < 40 || Get<uint32_t>(page, 0) != kMagic) {
    return Status::Internal("corrupt R-tree meta page");
  }
  Meta meta;
  meta.root_page = Get<uint64_t>(page, 8);
  meta.page_count = Get<uint64_t>(page, 16);
  meta.height = Get<uint32_t>(page, 24);
  meta.entry_count = Get<uint64_t>(page, 32);
  return meta;
}

Status LobRTree::WriteMeta(const Meta& meta) {
  std::vector<uint8_t> page(kPageSize, 0);
  Put(&page, 0, kMagic);
  Put(&page, 8, meta.root_page);
  Put(&page, 16, meta.page_count);
  Put(&page, 24, meta.height);
  Put(&page, 32, meta.entry_count);
  return ctx_->WriteLob(lob_, 0, page);
}

Result<LobRTree::Node> LobRTree::ReadNode(uint64_t page) const {
  EXI_ASSIGN_OR_RETURN(std::vector<uint8_t> buf,
                       ctx_->ReadLob(lob_, page * kPageSize, kPageSize));
  if (buf.size() < 4) return Status::Internal("short R-tree node page");
  Node node;
  node.leaf = Get<uint8_t>(buf, 0) != 0;
  uint16_t count = Get<uint16_t>(buf, 2);
  node.entries.resize(count);
  size_t off = 4;
  for (uint16_t i = 0; i < count; ++i) {
    Entry& e = node.entries[i];
    e.rect.xmin = Get<double>(buf, off);
    e.rect.ymin = Get<double>(buf, off + 8);
    e.rect.xmax = Get<double>(buf, off + 16);
    e.rect.ymax = Get<double>(buf, off + 24);
    e.ref = Get<uint64_t>(buf, off + 32);
    off += 40;
  }
  return node;
}

Status LobRTree::WriteNode(uint64_t page, const Node& node) {
  std::vector<uint8_t> buf(kPageSize, 0);
  Put<uint8_t>(&buf, 0, node.leaf ? 1 : 0);
  Put<uint16_t>(&buf, 2, uint16_t(node.entries.size()));
  size_t off = 4;
  for (const Entry& e : node.entries) {
    Put(&buf, off, e.rect.xmin);
    Put(&buf, off + 8, e.rect.ymin);
    Put(&buf, off + 16, e.rect.xmax);
    Put(&buf, off + 24, e.rect.ymax);
    Put(&buf, off + 32, e.ref);
    off += 40;
  }
  return ctx_->WriteLob(lob_, page * kPageSize, buf);
}

Result<uint64_t> LobRTree::AllocatePage(Meta* meta) {
  return meta->page_count++;
}

// ---- lifecycle ----

Result<LobId> LobRTree::Create(ServerContext& ctx) {
  EXI_ASSIGN_OR_RETURN(LobId lob, ctx.CreateLob());
  LobRTree tree(&ctx, lob);
  EXI_RETURN_IF_ERROR(tree.WriteMeta(Meta{}));
  EXI_RETURN_IF_ERROR(tree.WriteNode(1, Node{}));
  return lob;
}

Status LobRTree::Clear() {
  EXI_RETURN_IF_ERROR(WriteMeta(Meta{}));
  return WriteNode(1, Node{});
}

Result<uint64_t> LobRTree::EntryCount() const {
  EXI_ASSIGN_OR_RETURN(Meta meta, ReadMeta());
  return meta.entry_count;
}

Result<uint32_t> LobRTree::Height() const {
  EXI_ASSIGN_OR_RETURN(Meta meta, ReadMeta());
  return meta.height;
}

Result<uint64_t> LobRTree::PageCount() const {
  EXI_ASSIGN_OR_RETURN(Meta meta, ReadMeta());
  return meta.page_count;
}

// ---- insert ----

void LobRTree::QuadraticSplit(std::vector<Entry>* all,
                              std::vector<Entry>* left,
                              std::vector<Entry>* right) {
  // Seeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < all->size(); ++i) {
    for (size_t j = i + 1; j < all->size(); ++j) {
      double waste = Union((*all)[i].rect, (*all)[j].rect).Area() -
                     (*all)[i].rect.Area() - (*all)[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  left->push_back((*all)[seed_a]);
  right->push_back((*all)[seed_b]);
  Geometry lmbr = (*all)[seed_a].rect;
  Geometry rmbr = (*all)[seed_b].rect;

  std::vector<Entry> rest;
  rest.reserve(all->size() - 2);
  for (size_t i = 0; i < all->size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back((*all)[i]);
  }
  const size_t min_fill = all->size() / 3;  // keep both sides usable
  for (size_t i = 0; i < rest.size(); ++i) {
    const Entry& e = rest[i];
    size_t remaining = rest.size() - i;
    // If one side must take every remaining entry to reach min fill, give
    // them all to it.
    if (left->size() + remaining <= min_fill) {
      left->push_back(e);
      lmbr = Union(lmbr, e.rect);
      continue;
    }
    if (right->size() + remaining <= min_fill) {
      right->push_back(e);
      rmbr = Union(rmbr, e.rect);
      continue;
    }
    double le = Enlargement(lmbr, e.rect);
    double re = Enlargement(rmbr, e.rect);
    if (le < re || (le == re && left->size() <= right->size())) {
      left->push_back(e);
      lmbr = Union(lmbr, e.rect);
    } else {
      right->push_back(e);
      rmbr = Union(rmbr, e.rect);
    }
  }
}

Result<LobRTree::SplitResult> LobRTree::InsertRec(uint64_t page,
                                                  uint32_t level_from_leaf,
                                                  const Entry& entry,
                                                  Meta* meta) {
  EXI_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  SplitResult result;
  if (node.leaf) {
    node.entries.push_back(entry);
  } else {
    // Choose the subtree needing least enlargement (ties: smaller area).
    size_t best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      double enl = Enlargement(node.entries[i].rect, entry.rect);
      double area = node.entries[i].rect.Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = i;
        best_enl = enl;
        best_area = area;
      }
    }
    EXI_ASSIGN_OR_RETURN(
        SplitResult child,
        InsertRec(node.entries[best].ref, level_from_leaf - 1, entry, meta));
    node.entries[best].rect = child.updated_mbr;
    if (child.split) {
      node.entries.push_back(Entry{child.new_mbr, child.new_page});
    }
  }

  if (node.entries.size() <= kMaxEntries) {
    EXI_RETURN_IF_ERROR(WriteNode(page, node));
    result.updated_mbr = node.Mbr();
    return result;
  }

  // Overflow: quadratic split.
  std::vector<Entry> all = std::move(node.entries);
  Node left;
  Node right;
  left.leaf = node.leaf;
  right.leaf = node.leaf;
  QuadraticSplit(&all, &left.entries, &right.entries);
  EXI_ASSIGN_OR_RETURN(uint64_t new_page, AllocatePage(meta));
  EXI_RETURN_IF_ERROR(WriteNode(page, left));
  EXI_RETURN_IF_ERROR(WriteNode(new_page, right));
  result.split = true;
  result.new_page = new_page;
  result.new_mbr = right.Mbr();
  result.updated_mbr = left.Mbr();
  return result;
}

Status LobRTree::Insert(const Geometry& rect, uint64_t ref) {
  EXI_ASSIGN_OR_RETURN(Meta meta, ReadMeta());
  EXI_ASSIGN_OR_RETURN(
      SplitResult res,
      InsertRec(meta.root_page, meta.height - 1, Entry{rect, ref}, &meta));
  if (res.split) {
    // Grow the tree: new root with the two siblings.
    EXI_ASSIGN_OR_RETURN(uint64_t new_root, AllocatePage(&meta));
    Node root;
    root.leaf = false;
    root.entries.push_back(Entry{res.updated_mbr, meta.root_page});
    root.entries.push_back(Entry{res.new_mbr, res.new_page});
    EXI_RETURN_IF_ERROR(WriteNode(new_root, root));
    meta.root_page = new_root;
    meta.height++;
  }
  meta.entry_count++;
  return WriteMeta(meta);
}

// ---- remove ----

Result<bool> LobRTree::RemoveRec(uint64_t page, const Geometry& rect,
                                 uint64_t ref, Geometry* new_mbr,
                                 bool* became_empty) {
  EXI_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  bool removed = false;
  if (node.leaf) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].ref == ref && node.entries[i].rect.Equal(rect)) {
        node.entries.erase(node.entries.begin() + i);
        removed = true;
        break;
      }
    }
  } else {
    for (size_t i = 0; i < node.entries.size() && !removed; ++i) {
      if (!node.entries[i].rect.Intersects(rect)) continue;
      Geometry child_mbr;
      bool child_empty = false;
      EXI_ASSIGN_OR_RETURN(removed,
                           RemoveRec(node.entries[i].ref, rect, ref,
                                     &child_mbr, &child_empty));
      if (removed) {
        if (child_empty) {
          node.entries.erase(node.entries.begin() + i);
        } else {
          node.entries[i].rect = child_mbr;
        }
      }
    }
  }
  if (removed) {
    EXI_RETURN_IF_ERROR(WriteNode(page, node));
  }
  *new_mbr = node.Mbr();
  *became_empty = node.entries.empty();
  return removed;
}

Status LobRTree::Remove(const Geometry& rect, uint64_t ref) {
  EXI_ASSIGN_OR_RETURN(Meta meta, ReadMeta());
  Geometry mbr;
  bool empty = false;
  EXI_ASSIGN_OR_RETURN(bool removed,
                       RemoveRec(meta.root_page, rect, ref, &mbr, &empty));
  if (!removed) {
    return Status::NotFound("R-tree entry not found");
  }
  meta.entry_count--;
  return WriteMeta(meta);
}

// ---- search ----

Status LobRTree::SearchRec(
    uint64_t page, const Geometry& query,
    const std::function<bool(const Geometry&, uint64_t)>& visit,
    bool* keep_going) const {
  EXI_ASSIGN_OR_RETURN(Node node, ReadNode(page));
  for (const Entry& e : node.entries) {
    if (!*keep_going) return Status::OK();
    if (!e.rect.Intersects(query)) continue;
    if (node.leaf) {
      if (!visit(e.rect, e.ref)) {
        *keep_going = false;
        return Status::OK();
      }
    } else {
      EXI_RETURN_IF_ERROR(SearchRec(e.ref, query, visit, keep_going));
    }
  }
  return Status::OK();
}

Status LobRTree::Search(
    const Geometry& query,
    const std::function<bool(const Geometry&, uint64_t)>& visit) const {
  EXI_ASSIGN_OR_RETURN(Meta meta, ReadMeta());
  bool keep_going = true;
  return SearchRec(meta.root_page, query, visit, &keep_going);
}

}  // namespace exi::spatial
