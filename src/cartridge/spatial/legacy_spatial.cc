#include "cartridge/spatial/legacy_spatial.h"

#include <set>

#include "cartridge/spatial/tiling.h"

namespace exi::spatial {

Status LegacySpatialBuildIndex(Connection* conn, const std::string& table,
                               const std::string& geom_column,
                               int tile_level) {
  Database* db = conn->db();
  std::string idx_table = table + "_sdoindex";
  if (db->catalog().TableExists(idx_table)) {
    EXI_RETURN_IF_ERROR(db->DropTableCascade(idx_table, nullptr));
  }
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE TABLE " + idx_table +
                    " (rid INTEGER, sdo_code INTEGER)")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEX " + idx_table + "_code ON " + idx_table +
                    "(sdo_code)")
          .status());

  EXI_ASSIGN_OR_RETURN(HeapTable * base, db->catalog().GetTable(table));
  int col = base->schema().FindColumn(geom_column);
  if (col < 0) {
    return Status::NotFound("no column " + geom_column + " in " + table);
  }
  for (auto it = base->Scan(); it.Valid(); it.Next()) {
    const Value& v = it.row()[col];
    if (v.is_null()) continue;
    EXI_ASSIGN_OR_RETURN(Geometry g, FromValue(v));
    for (uint64_t tile : CoverTiles(g, tile_level)) {
      EXI_RETURN_IF_ERROR(
          db->InsertRow(idx_table,
                        {Value::Integer(int64_t(it.row_id())),
                         Value::Integer(int64_t(tile))},
                        nullptr)
              .status());
    }
  }
  EXI_RETURN_IF_ERROR(conn->Execute("ANALYZE " + idx_table).status());
  return Status::OK();
}

Result<std::vector<std::pair<RowId, RowId>>> LegacySpatialJoin(
    Connection* conn, const std::string& table_a,
    const std::string& geom_column_a, const std::string& table_b,
    const std::string& geom_column_b, const std::string& mask_text) {
  Database* db = conn->db();
  EXI_ASSIGN_OR_RETURN(uint8_t mask, ParseMask(mask_text));

  // Step 1 (user-visible SQL): tile-code equi-join of the two explicit
  // index tables.  The planner turns this into an index join on sdo_code.
  EXI_ASSIGN_OR_RETURN(
      QueryResult join,
      conn->Execute("SELECT a.rid, b.rid FROM " + table_a +
                    "_sdoindex a, " + table_b +
                    "_sdoindex b WHERE a.sdo_code = b.sdo_code"));

  // Step 2: DISTINCT on the candidate pairs (the paper's SELECT DISTINCT),
  // then the exact sdo_geom.Relate filter.
  std::set<std::pair<RowId, RowId>> candidates;
  for (const Row& row : join.rows) {
    candidates.emplace(RowId(row[0].AsInteger()), RowId(row[1].AsInteger()));
  }

  EXI_ASSIGN_OR_RETURN(HeapTable * base_a, db->catalog().GetTable(table_a));
  EXI_ASSIGN_OR_RETURN(HeapTable * base_b, db->catalog().GetTable(table_b));
  int col_a = base_a->schema().FindColumn(geom_column_a);
  int col_b = base_b->schema().FindColumn(geom_column_b);
  if (col_a < 0 || col_b < 0) {
    return Status::NotFound("geometry column missing");
  }

  std::vector<std::pair<RowId, RowId>> out;
  for (const auto& [rid_a, rid_b] : candidates) {
    Result<Row> row_a = base_a->Get(rid_a);
    Result<Row> row_b = base_b->Get(rid_b);
    if (!row_a.ok() || !row_b.ok()) continue;
    EXI_ASSIGN_OR_RETURN(Geometry ga, FromValue((*row_a)[col_a]));
    EXI_ASSIGN_OR_RETURN(Geometry gb, FromValue((*row_b)[col_b]));
    if (Relate(ga, gb, mask)) out.emplace_back(rid_a, rid_b);
  }
  return out;
}

}  // namespace exi::spatial
