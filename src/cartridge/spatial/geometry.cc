#include "cartridge/spatial/geometry.h"

#include <algorithm>

#include "common/strings.h"

namespace exi::spatial {

bool Geometry::Intersects(const Geometry& o) const {
  return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax && o.ymin <= ymax;
}

bool Geometry::Inside(const Geometry& o) const {
  return xmin > o.xmin && xmax < o.xmax && ymin > o.ymin && ymax < o.ymax;
}

bool Geometry::Equal(const Geometry& o) const {
  return xmin == o.xmin && xmax == o.xmax && ymin == o.ymin && ymax == o.ymax;
}

bool Geometry::Touches(const Geometry& o) const {
  if (!Intersects(o)) return false;
  // Zero-area intersection: they meet only along an edge or corner.
  double ix = std::min(xmax, o.xmax) - std::max(xmin, o.xmin);
  double iy = std::min(ymax, o.ymax) - std::max(ymin, o.ymin);
  return ix == 0.0 || iy == 0.0;
}

bool Geometry::Overlaps(const Geometry& o) const {
  if (!Intersects(o) || Touches(o)) return false;
  return !Inside(o) && !o.Inside(*this) && !Equal(o);
}

Result<uint8_t> ParseMask(const std::string& text) {
  // Find 'mask=' then '+'-separated relation names.
  std::string lower = ToLower(text);
  size_t pos = lower.find("mask=");
  if (pos == std::string::npos) {
    return Status::InvalidArgument("Sdo_Relate parameter must contain "
                                   "'mask=<relations>': " + text);
  }
  std::string rest = lower.substr(pos + 5);
  size_t end = rest.find_first_of(" \t,");
  if (end != std::string::npos) rest = rest.substr(0, end);
  uint8_t mask = 0;
  for (const std::string& name : SplitAny(rest, "+")) {
    if (name == "anyinteract") {
      mask |= uint8_t(RelationMask::kAnyInteract);
    } else if (name == "overlaps" || name == "overlapbdyintersect") {
      mask |= uint8_t(RelationMask::kOverlaps);
    } else if (name == "inside") {
      mask |= uint8_t(RelationMask::kInside);
    } else if (name == "contains") {
      mask |= uint8_t(RelationMask::kContains);
    } else if (name == "equal") {
      mask |= uint8_t(RelationMask::kEqual);
    } else if (name == "touch") {
      mask |= uint8_t(RelationMask::kTouch);
    } else {
      return Status::InvalidArgument("unknown spatial relation: " + name);
    }
  }
  if (mask == 0) {
    return Status::InvalidArgument("empty spatial mask: " + text);
  }
  return mask;
}

bool Relate(const Geometry& a, const Geometry& b, uint8_t mask) {
  if ((mask & uint8_t(RelationMask::kAnyInteract)) && a.Intersects(b)) {
    return true;
  }
  if ((mask & uint8_t(RelationMask::kOverlaps)) && a.Overlaps(b)) return true;
  if ((mask & uint8_t(RelationMask::kInside)) && a.Inside(b)) return true;
  if ((mask & uint8_t(RelationMask::kContains)) && a.ContainsGeom(b)) {
    return true;
  }
  if ((mask & uint8_t(RelationMask::kEqual)) && a.Equal(b)) return true;
  if ((mask & uint8_t(RelationMask::kTouch)) && a.Touches(b)) return true;
  return false;
}

ObjectTypeDef GeometryTypeDef() {
  ObjectTypeDef def;
  def.name = kGeometryTypeName;
  def.attributes = {
      {"xmin", DataType::Double()},
      {"ymin", DataType::Double()},
      {"xmax", DataType::Double()},
      {"ymax", DataType::Double()},
  };
  return def;
}

Value ToValue(const Geometry& g) {
  return Value::Object(kGeometryTypeName,
                       {Value::Double(g.xmin), Value::Double(g.ymin),
                        Value::Double(g.xmax), Value::Double(g.ymax)});
}

Result<Geometry> FromValue(const Value& v) {
  if (v.tag() != TypeTag::kObject ||
      !EqualsIgnoreCase(v.AsObject().type_name, kGeometryTypeName) ||
      v.AsObject().attributes.size() != 4) {
    return Status::TypeMismatch("expected an SDO_GEOMETRY value, got " +
                                v.ToString());
  }
  const ValueList& attrs = v.AsObject().attributes;
  Geometry g;
  g.xmin = attrs[0].AsDouble();
  g.ymin = attrs[1].AsDouble();
  g.xmax = attrs[2].AsDouble();
  g.ymax = attrs[3].AsDouble();
  if (!g.Valid()) {
    return Status::InvalidArgument("degenerate geometry: " + v.ToString());
  }
  return g;
}

}  // namespace exi::spatial
