#ifndef EXTIDX_CARTRIDGE_SPATIAL_TILING_H_
#define EXTIDX_CARTRIDGE_SPATIAL_TILING_H_

#include <cstdint>
#include <vector>

#include "cartridge/spatial/geometry.h"

namespace exi::spatial {

// Fixed-grid tessellation (§3.2.2: "The spatial index consists of a
// collection of tiles (unit of space) corresponding to every spatial
// object").  The world is the square [0, kWorldSize)²; level L divides it
// into 2^L x 2^L cells; a tile code is the Morton (Z-order) interleave of
// the cell coordinates, so nearby tiles get nearby codes — the property
// the pre-8i sdo_code range formulation exploited.
inline constexpr double kWorldSize = 10000.0;
inline constexpr int kMaxTileLevel = 16;

// Morton interleave of 16-bit x/y cell coordinates.
uint64_t MortonEncode(uint32_t x, uint32_t y);

// Tile codes of all grid cells at `level` intersecting `g` (clipped to the
// world square).  Codes are sorted ascending.
std::vector<uint64_t> CoverTiles(const Geometry& g, int level);

// Number of cells per axis at `level`.
inline uint32_t CellsPerAxis(int level) { return 1u << level; }

}  // namespace exi::spatial

#endif  // EXTIDX_CARTRIDGE_SPATIAL_TILING_H_
