#ifndef EXTIDX_CARTRIDGE_SPATIAL_GEOMETRY_H_
#define EXTIDX_CARTRIDGE_SPATIAL_GEOMETRY_H_

#include <string>

#include "common/result.h"
#include "types/datatype.h"
#include "types/value.h"

namespace exi::spatial {

// Planar geometry, stored as an axis-aligned rectangle (its minimum
// bounding box).  The paper's tiling index and two-phase filter work on
// arbitrary geometries via their tile covers; rectangles exercise the same
// candidate-then-exact pipeline with an exact final predicate
// (substitution documented in DESIGN.md).
struct Geometry {
  double xmin = 0.0;
  double ymin = 0.0;
  double xmax = 0.0;
  double ymax = 0.0;

  bool Valid() const { return xmin <= xmax && ymin <= ymax; }
  double Area() const { return (xmax - xmin) * (ymax - ymin); }

  bool Intersects(const Geometry& o) const;
  // Strictly inside (no shared boundary).
  bool Inside(const Geometry& o) const;
  bool ContainsGeom(const Geometry& o) const { return o.Inside(*this); }
  bool Equal(const Geometry& o) const;
  // Boundary contact with no interior intersection.
  bool Touches(const Geometry& o) const;
  // Interiors intersect but neither contains the other and not equal.
  bool Overlaps(const Geometry& o) const;
};

// Spatial relation masks accepted by Sdo_Relate ('mask=OVERLAPS', with
// multiple masks joined by '+', e.g. 'mask=INSIDE+EQUAL').
enum class RelationMask : uint8_t {
  kAnyInteract = 1 << 0,
  kOverlaps = 1 << 1,
  kInside = 1 << 2,
  kContains = 1 << 3,
  kEqual = 1 << 4,
  kTouch = 1 << 5,
};

// Parses 'mask=OVERLAPS+INSIDE' (case-insensitive, surrounding junk
// tolerated) into a bitmask.
Result<uint8_t> ParseMask(const std::string& text);

// True if any requested relation holds between `a` (the indexed geometry)
// and `b` (the query geometry).
bool Relate(const Geometry& a, const Geometry& b, uint8_t mask);

// ---- Value bridging ----
// Geometries travel through SQL as instances of the registered object type
// SDO_GEOMETRY(xmin, ymin, xmax, ymax).

inline constexpr char kGeometryTypeName[] = "SDO_GEOMETRY";

ObjectTypeDef GeometryTypeDef();
Value ToValue(const Geometry& g);
Result<Geometry> FromValue(const Value& v);

}  // namespace exi::spatial

#endif  // EXTIDX_CARTRIDGE_SPATIAL_GEOMETRY_H_
