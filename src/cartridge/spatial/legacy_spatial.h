#ifndef EXTIDX_CARTRIDGE_SPATIAL_LEGACY_SPATIAL_H_
#define EXTIDX_CARTRIDGE_SPATIAL_LEGACY_SPATIAL_H_

#include <string>
#include <utility>
#include <vector>

#include "cartridge/spatial/geometry.h"
#include "engine/connection.h"

namespace exi::spatial {

// Pre-Oracle8i spatial querying (§3.2.2): no indextype — the user
// maintains an explicit, user-visible tile table per layer
//
//   <layer>_sdoindex (rid INTEGER, sdo_code INTEGER)
//
// and formulates layer joins as plain SQL over those tables plus an exact
// relate function, exposing the querying algorithm and storage structures
// the extensible framework later encapsulated.  Experiment E3 compares
// this against the Sdo_Relate domain-index join.

// Builds (or rebuilds) the explicit tile table and a B-tree index on
// sdo_code, mirroring what a pre-8i user called PL/SQL packages for.
Status LegacySpatialBuildIndex(Connection* conn, const std::string& table,
                               const std::string& geom_column,
                               int tile_level);

// The pre-8i join: SELECT pairs of rows from `table_a` x `table_b` whose
// tile codes collide, then apply the exact relate — the DISTINCT +
// sdo_geom.Relate shape quoted in the paper.  Returns matching
// (rid_a, rid_b) pairs.
Result<std::vector<std::pair<RowId, RowId>>> LegacySpatialJoin(
    Connection* conn, const std::string& table_a,
    const std::string& geom_column_a, const std::string& table_b,
    const std::string& geom_column_b, const std::string& mask_text);

}  // namespace exi::spatial

#endif  // EXTIDX_CARTRIDGE_SPATIAL_LEGACY_SPATIAL_H_
