#include "cartridge/spatial/tiling.h"

#include <algorithm>
#include <cmath>

namespace exi::spatial {

uint64_t MortonEncode(uint32_t x, uint32_t y) {
  auto spread = [](uint64_t v) {
    v &= 0xFFFF;
    v = (v | (v << 8)) & 0x00FF00FF;
    v = (v | (v << 4)) & 0x0F0F0F0F;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

std::vector<uint64_t> CoverTiles(const Geometry& g, int level) {
  if (level < 0) level = 0;
  if (level > kMaxTileLevel) level = kMaxTileLevel;
  uint32_t n = CellsPerAxis(level);
  double cell = kWorldSize / double(n);

  auto clamp_cell = [&](double coord) {
    double c = std::floor(coord / cell);
    if (c < 0) c = 0;
    if (c > double(n - 1)) c = double(n - 1);
    return uint32_t(c);
  };
  uint32_t x0 = clamp_cell(g.xmin);
  uint32_t y0 = clamp_cell(g.ymin);
  // Upper edges exactly on a cell boundary belong to the lower cell.
  double xm = g.xmax > g.xmin ? std::nexttoward(g.xmax, g.xmin) : g.xmax;
  double ym = g.ymax > g.ymin ? std::nexttoward(g.ymax, g.ymin) : g.ymax;
  uint32_t x1 = clamp_cell(xm);
  uint32_t y1 = clamp_cell(ym);

  std::vector<uint64_t> tiles;
  tiles.reserve(size_t(x1 - x0 + 1) * size_t(y1 - y0 + 1));
  for (uint32_t y = y0; y <= y1; ++y) {
    for (uint32_t x = x0; x <= x1; ++x) {
      tiles.push_back(MortonEncode(x, y));
    }
  }
  std::sort(tiles.begin(), tiles.end());
  return tiles;
}

}  // namespace exi::spatial
