#include "cartridge/spatial/spatial_cartridge.h"

#include <algorithm>
#include <set>

#include "cartridge/spatial/rtree.h"
#include "core/scan_context.h"

namespace exi::spatial {

namespace {

std::string TileTableName(const std::string& index_name) {
  return index_name + "$ttab";
}
std::string MetaTableName(const std::string& index_name) {
  return index_name + "$meta";
}

Schema TileTableSchema() {
  Schema schema;
  schema.AddColumn(Column{"tile", DataType::Integer(), true});
  schema.AddColumn(Column{"rid", DataType::Integer(), true});
  return schema;
}

// Key/value metadata store (the cartridge-owned metadata table pattern,
// §2.5): used by the R-tree indextype to remember its LOB id.
Schema MetaTableSchema() {
  Schema schema;
  schema.AddColumn(Column{"key", DataType::Varchar(64), true});
  schema.AddColumn(Column{"val", DataType::Integer(), true});
  return schema;
}

// Shared scan workspace: exact-filtered candidates, iterated by Fetch.
struct SpatialScanWorkspace {
  std::vector<RowId> matches;
  size_t pos = 0;
};

// Parses the scan predicate common to both indextypes:
// args = (query geometry, 'mask=...').
Status ParseRelatePred(const OdciPredInfo& pred, Geometry* query,
                       uint8_t* mask) {
  if (pred.args.size() != 2) {
    return Status::InvalidArgument(
        "Sdo_Relate index scan expects (geometry, mask) arguments");
  }
  EXI_ASSIGN_OR_RETURN(*query, FromValue(pred.args[0]));
  if (pred.args[1].tag() != TypeTag::kVarchar) {
    return Status::InvalidArgument("Sdo_Relate mask must be a string");
  }
  EXI_ASSIGN_OR_RETURN(*mask, ParseMask(pred.args[1].AsVarchar()));
  return Status::OK();
}

// Phase 2 (exact filter): keeps candidates whose stored geometry satisfies
// the mask against the query geometry (§3.2.2 "applies an exact filter to
// these candidate rows").
Result<std::vector<RowId>> ExactFilter(const OdciIndexInfo& info,
                                       const std::vector<RowId>& candidates,
                                       const Geometry& query, uint8_t mask,
                                       ServerContext& ctx) {
  int col = info.indexed_position();
  if (col < 0) return Status::Internal("spatial index lost its column");
  std::vector<RowId> out;
  for (RowId rid : candidates) {
    Result<Row> row = ctx.GetBaseTableRow(info.table_name, rid);
    if (!row.ok()) continue;  // row deleted under us
    const Value& v = (*row)[col];
    if (v.is_null()) continue;
    EXI_ASSIGN_OR_RETURN(Geometry g, FromValue(v));
    if (Relate(g, query, mask)) out.push_back(rid);
  }
  return out;
}

Result<OdciScanContext> MakeScanContext(std::vector<RowId> matches) {
  auto ws = std::make_shared<SpatialScanWorkspace>();
  ws->matches = std::move(matches);
  OdciScanContext sctx;
  sctx.handle = ScanWorkspaceRegistry::Global().Allocate(ws);
  return sctx;
}

Status FetchFromWorkspace(OdciScanContext& sctx, size_t max_rows,
                          OdciFetchBatch* out) {
  EXI_ASSIGN_OR_RETURN(std::shared_ptr<SpatialScanWorkspace> ws,
                       ScanWorkspaceRegistry::Global()
                           .GetAs<SpatialScanWorkspace>(sctx.handle));
  size_t end = std::min(ws->matches.size(), ws->pos + max_rows);
  for (size_t i = ws->pos; i < end; ++i) {
    out->rids.push_back(ws->matches[i]);
  }
  ws->pos = end;
  return Status::OK();
}

Status CloseWorkspace(OdciScanContext& sctx) {
  if (sctx.uses_handle()) {
    return ScanWorkspaceRegistry::Global().Release(sctx.handle);
  }
  return Status::OK();
}

}  // namespace

// ===========================================================================
// SpatialIndexMethods (tile-based)
// ===========================================================================

int SpatialIndexMethods::TileLevel(const std::string& parameters) {
  IndexParameters params(parameters);
  int level = int(params.GetInt("tilelevel", 6));
  if (level < 1) level = 1;
  if (level > kMaxTileLevel) level = kMaxTileLevel;
  return level;
}

Status SpatialIndexMethods::Create(const OdciIndexInfo& info,
                                   ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(CreateStorage(info, ctx));
  int col = info.indexed_position();
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        inner = Insert(info, rid, row[col], ctx);
        return inner.ok();
      }));
  return inner;
}

Status SpatialIndexMethods::CreateStorage(const OdciIndexInfo& info,
                                          ServerContext& ctx) {
  return ctx.CreateIot(TileTableName(info.index_name), TileTableSchema(), 2);
}

Status SpatialIndexMethods::Alter(const OdciIndexInfo& info,
                                  ServerContext& ctx) {
  // Tile level may have changed: rebuild.
  EXI_RETURN_IF_ERROR(ctx.IotTruncate(TileTableName(info.index_name)));
  int col = info.indexed_position();
  int level = TileLevel(info.parameters);
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        const Value& v = row[col];
        if (v.is_null()) return true;
        Result<Geometry> g = FromValue(v);
        if (!g.ok()) {
          inner = g.status();
          return false;
        }
        for (uint64_t tile : CoverTiles(*g, level)) {
          inner = ctx.IotUpsert(TileTableName(info.index_name),
                                {Value::Integer(int64_t(tile)),
                                 Value::Integer(int64_t(rid))});
          if (!inner.ok()) return false;
        }
        return true;
      }));
  return inner;
}

Status SpatialIndexMethods::Truncate(const OdciIndexInfo& info,
                                     ServerContext& ctx) {
  return ctx.IotTruncate(TileTableName(info.index_name));
}

Status SpatialIndexMethods::Drop(const OdciIndexInfo& info,
                                 ServerContext& ctx) {
  return ctx.DropIot(TileTableName(info.index_name));
}

Status SpatialIndexMethods::Insert(const OdciIndexInfo& info, RowId rid,
                                   const Value& new_value,
                                   ServerContext& ctx) {
  if (new_value.is_null()) return Status::OK();
  EXI_ASSIGN_OR_RETURN(Geometry g, FromValue(new_value));
  for (uint64_t tile : CoverTiles(g, TileLevel(info.parameters))) {
    EXI_RETURN_IF_ERROR(ctx.IotUpsert(
        TileTableName(info.index_name),
        {Value::Integer(int64_t(tile)), Value::Integer(int64_t(rid))}));
  }
  return Status::OK();
}

Status SpatialIndexMethods::Delete(const OdciIndexInfo& info, RowId rid,
                                   const Value& old_value,
                                   ServerContext& ctx) {
  if (old_value.is_null()) return Status::OK();
  EXI_ASSIGN_OR_RETURN(Geometry g, FromValue(old_value));
  for (uint64_t tile : CoverTiles(g, TileLevel(info.parameters))) {
    EXI_RETURN_IF_ERROR(ctx.IotDelete(
        TileTableName(info.index_name),
        {Value::Integer(int64_t(tile)), Value::Integer(int64_t(rid))}));
  }
  return Status::OK();
}

Status SpatialIndexMethods::Update(const OdciIndexInfo& info, RowId rid,
                                   const Value& old_value,
                                   const Value& new_value,
                                   ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(Delete(info, rid, old_value, ctx));
  return Insert(info, rid, new_value, ctx);
}

Result<OdciScanContext> SpatialIndexMethods::Start(const OdciIndexInfo& info,
                                                   const OdciPredInfo& pred,
                                                   ServerContext& ctx) {
  Geometry query;
  uint8_t mask;
  EXI_RETURN_IF_ERROR(ParseRelatePred(pred, &query, &mask));

  // Phase 1: candidate rids whose tile cover intersects the query's.
  std::set<RowId> candidates;
  std::string iot = TileTableName(info.index_name);
  for (uint64_t tile : CoverTiles(query, TileLevel(info.parameters))) {
    EXI_RETURN_IF_ERROR(ctx.IotScanPrefix(
        iot, {Value::Integer(int64_t(tile))}, [&](const Row& row) {
          candidates.insert(RowId(row[1].AsInteger()));
          return true;
        }));
  }
  // Phase 2: exact relation on the candidates.
  EXI_ASSIGN_OR_RETURN(
      std::vector<RowId> matches,
      ExactFilter(info,
                  std::vector<RowId>(candidates.begin(), candidates.end()),
                  query, mask, ctx));
  return MakeScanContext(std::move(matches));
}

Status SpatialIndexMethods::Fetch(const OdciIndexInfo& info,
                                  OdciScanContext& sctx, size_t max_rows,
                                  OdciFetchBatch* out, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return FetchFromWorkspace(sctx, max_rows, out);
}

Status SpatialIndexMethods::Close(const OdciIndexInfo& info,
                                  OdciScanContext& sctx,
                                  ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return CloseWorkspace(sctx);
}

// ===========================================================================
// RtreeIndexMethods (LOB-resident R-tree)
// ===========================================================================

namespace {

Result<LobId> RtreeLob(const OdciIndexInfo& info, ServerContext& ctx) {
  EXI_ASSIGN_OR_RETURN(
      Row row, ctx.IotGet(MetaTableName(info.index_name),
                          {Value::Varchar("rtree_lob")}));
  return LobId(row[1].AsInteger());
}

}  // namespace

Status RtreeIndexMethods::Create(const OdciIndexInfo& info,
                                 ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(
      ctx.CreateIot(MetaTableName(info.index_name), MetaTableSchema(), 1));
  EXI_ASSIGN_OR_RETURN(LobId lob, LobRTree::Create(ctx));
  EXI_RETURN_IF_ERROR(ctx.IotUpsert(
      MetaTableName(info.index_name),
      {Value::Varchar("rtree_lob"), Value::Integer(int64_t(lob))}));
  LobRTree tree(&ctx, lob);
  int col = info.indexed_position();
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        const Value& v = row[col];
        if (v.is_null()) return true;
        Result<Geometry> g = FromValue(v);
        if (!g.ok()) {
          inner = g.status();
          return false;
        }
        inner = tree.Insert(*g, rid);
        return inner.ok();
      }));
  return inner;
}

Status RtreeIndexMethods::Alter(const OdciIndexInfo& info,
                                ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return Status::OK();  // no parameters affect the R-tree
}

Status RtreeIndexMethods::Truncate(const OdciIndexInfo& info,
                                   ServerContext& ctx) {
  EXI_ASSIGN_OR_RETURN(LobId lob, RtreeLob(info, ctx));
  LobRTree tree(&ctx, lob);
  return tree.Clear();
}

Status RtreeIndexMethods::Drop(const OdciIndexInfo& info,
                               ServerContext& ctx) {
  EXI_ASSIGN_OR_RETURN(LobId lob, RtreeLob(info, ctx));
  EXI_RETURN_IF_ERROR(ctx.DropLob(lob));
  return ctx.DropIot(MetaTableName(info.index_name));
}

Status RtreeIndexMethods::Insert(const OdciIndexInfo& info, RowId rid,
                                 const Value& new_value,
                                 ServerContext& ctx) {
  if (new_value.is_null()) return Status::OK();
  EXI_ASSIGN_OR_RETURN(Geometry g, FromValue(new_value));
  EXI_ASSIGN_OR_RETURN(LobId lob, RtreeLob(info, ctx));
  LobRTree tree(&ctx, lob);
  return tree.Insert(g, rid);
}

Status RtreeIndexMethods::Delete(const OdciIndexInfo& info, RowId rid,
                                 const Value& old_value,
                                 ServerContext& ctx) {
  if (old_value.is_null()) return Status::OK();
  EXI_ASSIGN_OR_RETURN(Geometry g, FromValue(old_value));
  EXI_ASSIGN_OR_RETURN(LobId lob, RtreeLob(info, ctx));
  LobRTree tree(&ctx, lob);
  return tree.Remove(g, rid);
}

Status RtreeIndexMethods::Update(const OdciIndexInfo& info, RowId rid,
                                 const Value& old_value,
                                 const Value& new_value,
                                 ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(Delete(info, rid, old_value, ctx));
  return Insert(info, rid, new_value, ctx);
}

Result<OdciScanContext> RtreeIndexMethods::Start(const OdciIndexInfo& info,
                                                 const OdciPredInfo& pred,
                                                 ServerContext& ctx) {
  Geometry query;
  uint8_t mask;
  EXI_RETURN_IF_ERROR(ParseRelatePred(pred, &query, &mask));
  EXI_ASSIGN_OR_RETURN(LobId lob, RtreeLob(info, ctx));
  LobRTree tree(&ctx, lob);
  std::vector<RowId> candidates;
  EXI_RETURN_IF_ERROR(
      tree.Search(query, [&candidates](const Geometry&, uint64_t rid) {
        candidates.push_back(RowId(rid));
        return true;
      }));
  std::sort(candidates.begin(), candidates.end());
  EXI_ASSIGN_OR_RETURN(std::vector<RowId> matches,
                       ExactFilter(info, candidates, query, mask, ctx));
  return MakeScanContext(std::move(matches));
}

Status RtreeIndexMethods::Fetch(const OdciIndexInfo& info,
                                OdciScanContext& sctx, size_t max_rows,
                                OdciFetchBatch* out, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return FetchFromWorkspace(sctx, max_rows, out);
}

Status RtreeIndexMethods::Close(const OdciIndexInfo& info,
                                OdciScanContext& sctx, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  return CloseWorkspace(sctx);
}

// ===========================================================================
// SpatialStats
// ===========================================================================

Result<double> SpatialStats::Selectivity(const OdciIndexInfo& info,
                                         const OdciPredInfo& pred,
                                         uint64_t table_rows,
                                         ServerContext& ctx) {
  (void)info;
  (void)ctx;
  (void)table_rows;
  Geometry query;
  uint8_t mask;
  Status st = ParseRelatePred(pred, &query, &mask);
  if (!st.ok()) return 0.05;
  double frac = query.Area() / (kWorldSize * kWorldSize);
  // Interaction probability exceeds pure area fraction (objects have
  // extent); pad with a small constant.
  double sel = frac + 0.002;
  if (sel > 1.0) sel = 1.0;
  return sel;
}

Result<double> SpatialStats::IndexCost(const OdciIndexInfo& info,
                                       const OdciPredInfo& pred,
                                       double selectivity,
                                       uint64_t table_rows,
                                       ServerContext& ctx) {
  (void)ctx;
  Geometry query;
  uint8_t mask;
  double tiles = 4.0;
  if (ParseRelatePred(pred, &query, &mask).ok()) {
    tiles = double(
        CoverTiles(query, SpatialIndexMethods::TileLevel(info.parameters))
            .size());
  }
  // Tile probes + candidate fetch + exact-filter work.
  return 10.0 + tiles * 2.0 + selectivity * double(table_rows) * 2.0;
}

// ===========================================================================
// Installation
// ===========================================================================

Status InstallSpatialCartridge(Connection* conn) {
  Catalog& catalog = conn->db()->catalog();
  EXI_RETURN_IF_ERROR(catalog.RegisterObjectType(GeometryTypeDef()));

  // Constructor function, usable anywhere in SQL:
  //   SDO_GEOMETRY(xmin, ymin, xmax, ymax)
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "SDO_GEOMETRY", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 4) {
          return Status::InvalidArgument("SDO_GEOMETRY expects 4 numbers");
        }
        Geometry g;
        for (const Value& v : args) {
          if (v.is_null() || !DataType(v.tag()).is_numeric()) {
            return Status::TypeMismatch("SDO_GEOMETRY expects numbers");
          }
        }
        g.xmin = args[0].AsDouble();
        g.ymin = args[1].AsDouble();
        g.xmax = args[2].AsDouble();
        g.ymax = args[3].AsDouble();
        if (!g.Valid()) {
          return Status::InvalidArgument("degenerate SDO_GEOMETRY");
        }
        return ToValue(g);
      }));

  // Functional implementation of Sdo_Relate (§2.2.1).
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "SdoRelateFn", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 3) {
          return Status::InvalidArgument("Sdo_Relate expects 3 arguments");
        }
        if (args[0].is_null() || args[1].is_null() || args[2].is_null()) {
          return Value::Null();
        }
        EXI_ASSIGN_OR_RETURN(Geometry a, FromValue(args[0]));
        EXI_ASSIGN_OR_RETURN(Geometry b, FromValue(args[1]));
        if (args[2].tag() != TypeTag::kVarchar) {
          return Status::TypeMismatch("Sdo_Relate mask must be a string");
        }
        EXI_ASSIGN_OR_RETURN(uint8_t mask,
                             ParseMask(args[2].AsVarchar()));
        return Value::Boolean(Relate(a, b, mask));
      }));

  EXI_RETURN_IF_ERROR(catalog.implementations().Register(
      "SpatialIndexMethods",
      [] { return std::make_shared<SpatialIndexMethods>(); },
      [] { return std::make_shared<SpatialStats>(); }));
  EXI_RETURN_IF_ERROR(catalog.implementations().Register(
      "RtreeIndexMethods",
      [] { return std::make_shared<RtreeIndexMethods>(); },
      [] { return std::make_shared<SpatialStats>(); }));

  EXI_RETURN_IF_ERROR(
      conn->Execute(
              "CREATE OPERATOR Sdo_Relate BINDING (OBJECT SDO_GEOMETRY, "
              "OBJECT SDO_GEOMETRY, VARCHAR) RETURN BOOLEAN USING "
              "SdoRelateFn")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEXTYPE SpatialIndexType FOR Sdo_Relate("
                    "OBJECT SDO_GEOMETRY, OBJECT SDO_GEOMETRY, VARCHAR) "
                    "USING SpatialIndexMethods")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEXTYPE RtreeIndexType FOR Sdo_Relate("
                    "OBJECT SDO_GEOMETRY, OBJECT SDO_GEOMETRY, VARCHAR) "
                    "USING RtreeIndexMethods")
          .status());
  return Status::OK();
}

}  // namespace exi::spatial
