#ifndef EXTIDX_CARTRIDGE_SPATIAL_RTREE_H_
#define EXTIDX_CARTRIDGE_SPATIAL_RTREE_H_

#include <functional>
#include <vector>

#include "cartridge/spatial/geometry.h"
#include "core/odci.h"

namespace exi::spatial {

// R-tree [Gut84] whose nodes live as fixed-size pages inside a database
// LOB, accessed exclusively through ServerContext LOB callbacks.  This is
// the paper's "index data can be stored ... in Large Objects (LOBs)"
// storage option (§2.5), and mirrors how Oracle Spatial later stored its
// R-tree.  Offered as a second indextype for the same Sdo_Relate operator,
// demonstrating §3.2.2's point that the underlying spatial indexing
// algorithm can change without end users changing their queries.
//
// Page 0 is the meta page (root id, page count, height, entry count);
// node pages hold a leaf flag, an entry count, and up to kMaxEntries
// entries of 40 bytes (4 doubles + 8-byte ref: a RowId in leaves, a child
// page id in internal nodes).
//
// Deletion removes the entry and tightens bounding boxes along the path
// but does not merge underfull nodes (PostgreSQL-GiST-style lazy
// deletion); searches remain correct.
class LobRTree {
 public:
  static constexpr size_t kPageSize = 4096;
  static constexpr size_t kMaxEntries = 64;

  // Opens an existing tree stored in `lob`.
  LobRTree(ServerContext* ctx, LobId lob) : ctx_(ctx), lob_(lob) {}

  // Allocates a LOB and initializes an empty tree in it.
  static Result<LobId> Create(ServerContext& ctx);

  Status Insert(const Geometry& rect, uint64_t ref);

  // Removes the entry matching (rect, ref) exactly; NotFound if absent.
  Status Remove(const Geometry& rect, uint64_t ref);

  // Visits every leaf entry whose rectangle intersects `query`; the
  // visitor returns false to stop early.
  Status Search(const Geometry& query,
                const std::function<bool(const Geometry&, uint64_t)>& visit)
      const;

  // Resets to an empty tree.
  Status Clear();

  Result<uint64_t> EntryCount() const;
  Result<uint32_t> Height() const;
  Result<uint64_t> PageCount() const;

 private:
  struct Entry {
    Geometry rect;
    uint64_t ref;
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;

    Geometry Mbr() const;
  };
  struct Meta {
    uint64_t root_page = 1;
    uint64_t page_count = 2;  // meta + root
    uint32_t height = 1;
    uint64_t entry_count = 0;
  };

  Result<Meta> ReadMeta() const;
  Status WriteMeta(const Meta& meta);
  Result<Node> ReadNode(uint64_t page) const;
  Status WriteNode(uint64_t page, const Node& node);
  Result<uint64_t> AllocatePage(Meta* meta);

  // Recursive insert; returns the new sibling (page, mbr) if `page` split.
  struct SplitResult {
    bool split = false;
    uint64_t new_page = 0;
    Geometry new_mbr;
    Geometry updated_mbr;  // possibly-grown MBR of the original page
  };
  Result<SplitResult> InsertRec(uint64_t page, uint32_t level_from_leaf,
                                const Entry& entry, Meta* meta);

  // Quadratic split of an overfull entry set into two groups.
  static void QuadraticSplit(std::vector<Entry>* all,
                             std::vector<Entry>* left,
                             std::vector<Entry>* right);

  Result<bool> RemoveRec(uint64_t page, const Geometry& rect, uint64_t ref,
                         Geometry* new_mbr, bool* became_empty);

  Status SearchRec(
      uint64_t page, const Geometry& query,
      const std::function<bool(const Geometry&, uint64_t)>& visit,
      bool* keep_going) const;

  ServerContext* ctx_;
  LobId lob_;
};

}  // namespace exi::spatial

#endif  // EXTIDX_CARTRIDGE_SPATIAL_RTREE_H_
