#ifndef EXTIDX_CARTRIDGE_SPATIAL_SPATIAL_CARTRIDGE_H_
#define EXTIDX_CARTRIDGE_SPATIAL_SPATIAL_CARTRIDGE_H_

#include <string>

#include "cartridge/params.h"
#include "cartridge/spatial/geometry.h"
#include "cartridge/spatial/tiling.h"
#include "core/odci.h"
#include "engine/connection.h"

namespace exi::spatial {

// The Spatial-Data-Cartridge-style indexing scheme (§3.2.2): each geometry
// is tessellated into grid tiles; (tile, rid) pairs live in an IOT; an
// Sdo_Relate scan runs the paper's two phases — tile-cover candidate
// lookup, then an exact relation filter on the candidates' geometries.
//
// PARAMETERS:  ':TileLevel <n>'  grid refinement (default 6 => 64x64).
class SpatialIndexMethods : public OdciIndex {
 public:
  // Insert writes only via IotUpsert and never reads its own writes; tile
  // keys embed the rid, so index contents are insertion-order-insensitive.
  // Start/Fetch/Close touch no mutable cartridge state (DESIGN.md §5).
  OdciCapabilities Capabilities() const override {
    return {/*parallel_build=*/true, /*parallel_scan=*/true};
  }

  const char* TraceLabel() const override { return "spatial_tile"; }

  Status Create(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status CreateStorage(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Alter(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Truncate(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Drop(const OdciIndexInfo& info, ServerContext& ctx) override;

  Status Insert(const OdciIndexInfo& info, RowId rid, const Value& new_value,
                ServerContext& ctx) override;
  Status Delete(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                ServerContext& ctx) override;
  Status Update(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                const Value& new_value, ServerContext& ctx) override;

  Result<OdciScanContext> Start(const OdciIndexInfo& info,
                                const OdciPredInfo& pred,
                                ServerContext& ctx) override;
  Status Fetch(const OdciIndexInfo& info, OdciScanContext& sctx,
               size_t max_rows, OdciFetchBatch* out,
               ServerContext& ctx) override;
  Status Close(const OdciIndexInfo& info, OdciScanContext& sctx,
               ServerContext& ctx) override;

  static int TileLevel(const std::string& parameters);
};

// R-tree-backed indextype for the same Sdo_Relate operator: index data in
// a LOB (§2.5 storage option), structure in cartridge/spatial/rtree.h.
// Swapping indextypes requires no query changes — the §3.2.2 claim.
class RtreeIndexMethods : public OdciIndex {
 public:
  const char* TraceLabel() const override { return "spatial_rtree"; }

  Status Create(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Alter(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Truncate(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Drop(const OdciIndexInfo& info, ServerContext& ctx) override;

  Status Insert(const OdciIndexInfo& info, RowId rid, const Value& new_value,
                ServerContext& ctx) override;
  Status Delete(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                ServerContext& ctx) override;
  Status Update(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                const Value& new_value, ServerContext& ctx) override;

  Result<OdciScanContext> Start(const OdciIndexInfo& info,
                                const OdciPredInfo& pred,
                                ServerContext& ctx) override;
  Status Fetch(const OdciIndexInfo& info, OdciScanContext& sctx,
               size_t max_rows, OdciFetchBatch* out,
               ServerContext& ctx) override;
  Status Close(const OdciIndexInfo& info, OdciScanContext& sctx,
               ServerContext& ctx) override;
};

// Area-fraction selectivity and tile/page-based cost (shared by both
// spatial indextypes).
class SpatialStats : public OdciStats {
 public:
  Result<double> Selectivity(const OdciIndexInfo& info,
                             const OdciPredInfo& pred, uint64_t table_rows,
                             ServerContext& ctx) override;
  Result<double> IndexCost(const OdciIndexInfo& info,
                           const OdciPredInfo& pred, double selectivity,
                           uint64_t table_rows, ServerContext& ctx) override;
};

// Registers the SDO_GEOMETRY object type, the SDO_GEOMETRY(x1,y1,x2,y2)
// constructor function, the Sdo_Relate functional implementation, both
// implementation types, and the cartridge DDL:
//   CREATE OPERATOR Sdo_Relate BINDING (OBJECT SDO_GEOMETRY,
//     OBJECT SDO_GEOMETRY, VARCHAR) RETURN BOOLEAN USING SdoRelateFn;
//   CREATE INDEXTYPE SpatialIndexType FOR Sdo_Relate(...) USING
//     SpatialIndexMethods;
//   CREATE INDEXTYPE RtreeIndexType FOR Sdo_Relate(...) USING
//     RtreeIndexMethods;
Status InstallSpatialCartridge(Connection* conn);

}  // namespace exi::spatial

#endif  // EXTIDX_CARTRIDGE_SPATIAL_SPATIAL_CARTRIDGE_H_
