#ifndef EXTIDX_CARTRIDGE_TEXT_LEGACY_TEXT_H_
#define EXTIDX_CARTRIDGE_TEXT_LEGACY_TEXT_H_

#include <functional>
#include <string>

#include "common/result.h"
#include "engine/database.h"

namespace exi::text {

// Pre-Oracle8i two-step text query evaluation (§3.2.1) — the baseline the
// extensible-indexing integration is measured against in experiment E1:
//
//   1. Evaluate the text predicate against the inverted index, writing
//      every matching rowid into a temporary result table.
//   2. Rewrite the query as a join of the base table with the temporary
//      table ("SELECT d.* FROM docs d, results r WHERE d.rowid = r.rid")
//      and only then return rows.
//
// It reads the SAME posting IOT as the 8i-style domain-index scan, so the
// two strategies differ only in execution shape: materialization + join
// versus pipelined fetches.  Temporary-table traffic is metered in
// StorageMetrics (temp_rows_written / temp_rows_read).
//
// `on_row` is invoked for each result row as soon as the strategy can
// produce it — for this legacy path, only after step 1 fully completes,
// which is what experiment E2 (time to first row) measures.
Status LegacyTextQuery(
    Database* db, const std::string& index_name, const std::string& query,
    const std::function<void(RowId, const Row&)>& on_row);

}  // namespace exi::text

#endif  // EXTIDX_CARTRIDGE_TEXT_LEGACY_TEXT_H_
