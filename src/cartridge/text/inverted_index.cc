#include "cartridge/text/inverted_index.h"

#include <algorithm>
#include <set>

namespace exi::text {

Schema PostingTableSchema() {
  Schema schema;
  schema.AddColumn(Column{"token", DataType::Varchar(256), true});
  schema.AddColumn(Column{"rid", DataType::Integer(), true});
  schema.AddColumn(Column{"freq", DataType::Integer(), true});
  return schema;
}

namespace {

// Intermediate result: rid-sorted matches.
using Matches = std::vector<TextMatch>;

Matches Intersect(const Matches& a, const Matches& b) {
  Matches out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].rid < b[j].rid) {
      ++i;
    } else if (a[i].rid > b[j].rid) {
      ++j;
    } else {
      out.push_back(TextMatch{a[i].rid, a[i].score + b[j].score});
      ++i;
      ++j;
    }
  }
  return out;
}

Matches Union(const Matches& a, const Matches& b) {
  Matches out;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].rid < b[j].rid)) {
      out.push_back(a[i++]);
    } else if (i >= a.size() || b[j].rid < a[i].rid) {
      out.push_back(b[j++]);
    } else {
      out.push_back(TextMatch{a[i].rid, a[i].score + b[j].score});
      ++i;
      ++j;
    }
  }
  return out;
}

Matches Subtract(const Matches& a, const Matches& b) {
  Matches out;
  size_t j = 0;
  for (const TextMatch& m : a) {
    while (j < b.size() && b[j].rid < m.rid) ++j;
    if (j >= b.size() || b[j].rid != m.rid) out.push_back(m);
  }
  return out;
}

Result<Matches> Eval(const QueryNode& node, const PostingSource& postings,
                     const UniverseSource& universe) {
  switch (node.kind) {
    case QueryNode::Kind::kTerm: {
      Matches out;
      EXI_RETURN_IF_ERROR(
          postings(node.term, [&out](RowId rid, int64_t freq) {
            out.push_back(TextMatch{rid, freq});
            return true;
          }));
      std::sort(out.begin(), out.end(),
                [](const TextMatch& x, const TextMatch& y) {
                  return x.rid < y.rid;
                });
      return out;
    }
    case QueryNode::Kind::kAnd: {
      EXI_ASSIGN_OR_RETURN(Matches lhs,
                           Eval(*node.children[0], postings, universe));
      // a AND NOT b avoids materializing the universe.
      if (node.children[1]->kind == QueryNode::Kind::kNot) {
        EXI_ASSIGN_OR_RETURN(
            Matches rhs,
            Eval(*node.children[1]->children[0], postings, universe));
        return Subtract(lhs, rhs);
      }
      EXI_ASSIGN_OR_RETURN(Matches rhs,
                           Eval(*node.children[1], postings, universe));
      return Intersect(lhs, rhs);
    }
    case QueryNode::Kind::kOr: {
      EXI_ASSIGN_OR_RETURN(Matches lhs,
                           Eval(*node.children[0], postings, universe));
      EXI_ASSIGN_OR_RETURN(Matches rhs,
                           Eval(*node.children[1], postings, universe));
      return Union(lhs, rhs);
    }
    case QueryNode::Kind::kNot: {
      EXI_ASSIGN_OR_RETURN(Matches operand,
                           Eval(*node.children[0], postings, universe));
      std::vector<RowId> all;
      EXI_RETURN_IF_ERROR(universe(&all));
      std::sort(all.begin(), all.end());
      Matches everything;
      everything.reserve(all.size());
      for (RowId rid : all) everything.push_back(TextMatch{rid, 0});
      return Subtract(everything, operand);
    }
  }
  return Status::Internal("unhandled text query node");
}

}  // namespace

Result<std::vector<TextMatch>> EvaluateTextQuery(
    const QueryNode& root, const PostingSource& postings,
    const UniverseSource& universe) {
  return Eval(root, postings, universe);
}

namespace {

bool MatchesTokens(const QueryNode& node,
                   const std::set<std::string>& tokens) {
  switch (node.kind) {
    case QueryNode::Kind::kTerm:
      return tokens.count(node.term) > 0;
    case QueryNode::Kind::kAnd:
      return MatchesTokens(*node.children[0], tokens) &&
             MatchesTokens(*node.children[1], tokens);
    case QueryNode::Kind::kOr:
      return MatchesTokens(*node.children[0], tokens) ||
             MatchesTokens(*node.children[1], tokens);
    case QueryNode::Kind::kNot:
      return !MatchesTokens(*node.children[0], tokens);
  }
  return false;
}

}  // namespace

bool MatchesDocument(const QueryNode& root, const Tokenizer& tokenizer,
                     const std::string& document) {
  std::vector<std::string> tokens = tokenizer.Tokenize(document);
  std::set<std::string> token_set(tokens.begin(), tokens.end());
  return MatchesTokens(root, token_set);
}

}  // namespace exi::text
