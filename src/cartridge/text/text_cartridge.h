#ifndef EXTIDX_CARTRIDGE_TEXT_TEXT_CARTRIDGE_H_
#define EXTIDX_CARTRIDGE_TEXT_TEXT_CARTRIDGE_H_

#include <memory>
#include <string>

#include "cartridge/params.h"
#include "cartridge/text/inverted_index.h"
#include "cartridge/text/tokenizer.h"
#include "core/odci.h"
#include "engine/connection.h"

namespace exi::text {

// The interMedia-Text-style cartridge (§3.2.1): full-text indexing of
// VARCHAR columns with a user-defined Contains operator evaluated either
// functionally (per row) or through a domain-index scan over an inverted
// index held in an index-organized table.
//
// PARAMETERS understood (all optional):
//   :Language <name>         lexical analyzer tag (default English)
//   :Ignore <w1> <w2> ...    stop words (accumulates across ALTER INDEX)
//   :ContextMode handle|state   scan-context mechanism (§2.2.3; default
//                               handle).  `state` serializes the remaining
//                               result set through the context object on
//                               every Fetch — the Return State mechanism.
//   :Mode precompute|incremental  scan strategy (§2.2.3; default
//                               precompute).  `incremental` streams
//                               single-term queries directly off the IOT
//                               cursor, fetching candidates a batch at a
//                               time; multi-term queries fall back to
//                               precompute.
class TextIndexMethods : public OdciIndex {
 public:
  // Insert writes only via IotUpsert and never reads its own writes; posting
  // keys embed the rid, so index contents are insertion-order-insensitive.
  // Start/Fetch/Close touch no mutable cartridge state.  Both parallel
  // capabilities hold (DESIGN.md §5), and the batched maintenance routines
  // below amortize parameter parsing and tokenizer construction over a
  // whole statement's rows.
  OdciCapabilities Capabilities() const override {
    return {/*parallel_build=*/true, /*parallel_scan=*/true,
            /*batch_maintenance=*/true};
  }

  const char* TraceLabel() const override { return "text"; }

  // ---- definition ----
  Status Create(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status CreateStorage(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Alter(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Truncate(const OdciIndexInfo& info, ServerContext& ctx) override;
  Status Drop(const OdciIndexInfo& info, ServerContext& ctx) override;

  // ---- maintenance ----
  Status Insert(const OdciIndexInfo& info, RowId rid, const Value& new_value,
                ServerContext& ctx) override;
  Status Delete(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                ServerContext& ctx) override;
  Status Update(const OdciIndexInfo& info, RowId rid, const Value& old_value,
                const Value& new_value, ServerContext& ctx) override;

  // Batched maintenance (§2.2.3 extension): one parameter parse + one
  // tokenizer for the whole batch, then a single posting-upsert pass.
  Status BatchInsert(const OdciIndexInfo& info, const std::vector<RowId>& rids,
                     const ValueList& new_values, ServerContext& ctx) override;
  Status BatchDelete(const OdciIndexInfo& info, const std::vector<RowId>& rids,
                     const ValueList& old_values, ServerContext& ctx) override;
  Status BatchUpdate(const OdciIndexInfo& info, const std::vector<RowId>& rids,
                     const ValueList& old_values, const ValueList& new_values,
                     ServerContext& ctx) override;

  // ---- scan ----
  Result<OdciScanContext> Start(const OdciIndexInfo& info,
                                const OdciPredInfo& pred,
                                ServerContext& ctx) override;
  Status Fetch(const OdciIndexInfo& info, OdciScanContext& sctx,
               size_t max_rows, OdciFetchBatch* out,
               ServerContext& ctx) override;
  Status Close(const OdciIndexInfo& info, OdciScanContext& sctx,
               ServerContext& ctx) override;

  // Parses the cartridge parameter conventions (exposed for tests).
  static IndexParameters ParseParams(const std::string& text);
  static Tokenizer MakeTokenizer(const IndexParameters& params);

 private:
  Status InsertDocument(const OdciIndexInfo& info, RowId rid,
                        const std::string& document, ServerContext& ctx);
  Status DeleteDocument(const OdciIndexInfo& info, RowId rid,
                        const std::string& document, ServerContext& ctx);
  // Rebuilds the posting table from the base table (used by Alter when the
  // stop-word list changes).
  Status Rebuild(const OdciIndexInfo& info, ServerContext& ctx);
};

// Optimizer statistics for TextIndexType: term-document-frequency-based
// selectivity and posting-scan cost (ODCIStatsSelectivity /
// ODCIStatsIndexCost, §2.4.2).
class TextStats : public OdciStats {
 public:
  Result<double> Selectivity(const OdciIndexInfo& info,
                             const OdciPredInfo& pred, uint64_t table_rows,
                             ServerContext& ctx) override;
  Result<double> IndexCost(const OdciIndexInfo& info,
                           const OdciPredInfo& pred, double selectivity,
                           uint64_t table_rows, ServerContext& ctx) override;
};

// Registers the C++ hooks (TextContains function, TextIndexMethods
// implementation type) and executes the cartridge DDL:
//   CREATE OPERATOR Contains BINDING (VARCHAR, VARCHAR) RETURN BOOLEAN
//     USING TextContains;
//   CREATE INDEXTYPE TextIndexType FOR Contains(VARCHAR, VARCHAR)
//     USING TextIndexMethods;
Status InstallTextCartridge(Connection* conn);

}  // namespace exi::text

#endif  // EXTIDX_CARTRIDGE_TEXT_TEXT_CARTRIDGE_H_
