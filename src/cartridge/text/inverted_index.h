#ifndef EXTIDX_CARTRIDGE_TEXT_INVERTED_INDEX_H_
#define EXTIDX_CARTRIDGE_TEXT_INVERTED_INDEX_H_

#include <functional>
#include <string>
#include <vector>

#include "cartridge/text/tokenizer.h"
#include "common/result.h"
#include "types/schema.h"
#include "types/value.h"

namespace exi::text {

// The inverted index is stored cooperatively in an index-organized table
// (§3.2.1: "The inverted index is stored in an index-organized table"),
// keyed (token, doc rowid) with the in-document frequency as payload:
//
//   <index_name>$ptab (token VARCHAR, rid INTEGER, freq INTEGER)
//       PRIMARY KEY (token, rid)
//
// Both the 8i-style cartridge (text_cartridge) and the pre-8i baseline
// (legacy_text) evaluate queries against this layout through a
// PostingSource abstraction, so comparisons measure execution strategy,
// not index content.

inline std::string PostingTableName(const std::string& index_name) {
  return index_name + "$ptab";
}

Schema PostingTableSchema();
inline constexpr size_t kPostingKeyColumns = 2;

// Visits (rid, freq) pairs of one term's posting list.
using PostingVisitor = std::function<bool(RowId, int64_t)>;
// Supplies the posting list of a term.
using PostingSource =
    std::function<Status(const std::string& term, const PostingVisitor&)>;
// Supplies the set of all document rowids (needed only for NOT).
using UniverseSource = std::function<Status(std::vector<RowId>*)>;

// A document matching a text query, with an additive term-frequency score
// (surfaced as the scan's ancillary value, §2.4.2 ancillary operators).
struct TextMatch {
  RowId rid;
  int64_t score;
};

// Evaluates a boolean keyword query against posting lists.  Results are
// sorted by rid.  NOT consumes the universe exactly once per NOT node.
Result<std::vector<TextMatch>> EvaluateTextQuery(
    const QueryNode& root, const PostingSource& postings,
    const UniverseSource& universe);

// Evaluates the query against a single document's tokens (the functional
// implementation path of Contains, §2.2.1).
bool MatchesDocument(const QueryNode& root, const Tokenizer& tokenizer,
                     const std::string& document);

}  // namespace exi::text

#endif  // EXTIDX_CARTRIDGE_TEXT_INVERTED_INDEX_H_
