#include "cartridge/text/text_cartridge.h"

#include <algorithm>
#include <cstring>

#include "common/strings.h"
#include "core/scan_context.h"

namespace exi::text {

namespace {

// ---- scan workspace (Return Handle mechanism) ----

// One struct serves both scan strategies (§2.2.3):
//  * Precompute-All: `matches` holds the full result set; `pos` iterates.
//  * Incremental: single-term queries stream candidates straight off the
//    posting IOT, resuming after (`term`, `last_rid`) on each Fetch.
struct TextScanWorkspace {
  bool incremental = false;
  // Precompute-All state.
  std::vector<TextMatch> matches;
  size_t pos = 0;
  // Incremental state.
  std::string term;
  RowId last_rid = 0;
  bool started = false;
};

// ---- Return State serialization ----
// Layout: u64 pos | u64 count | count * (u64 rid, i64 score).

void EncodeState(const std::vector<TextMatch>& matches, size_t pos,
                 std::vector<uint8_t>* out) {
  out->resize(16 + matches.size() * 16);
  uint64_t p = pos;
  uint64_t n = matches.size();
  std::memcpy(out->data(), &p, 8);
  std::memcpy(out->data() + 8, &n, 8);
  for (size_t i = 0; i < matches.size(); ++i) {
    std::memcpy(out->data() + 16 + i * 16, &matches[i].rid, 8);
    std::memcpy(out->data() + 24 + i * 16, &matches[i].score, 8);
  }
}

Status DecodeState(const std::vector<uint8_t>& state, size_t* pos,
                   std::vector<TextMatch>* matches) {
  if (state.size() < 16) {
    return Status::Internal("corrupt text scan state");
  }
  uint64_t p;
  uint64_t n;
  std::memcpy(&p, state.data(), 8);
  std::memcpy(&n, state.data() + 8, 8);
  if (state.size() != 16 + n * 16) {
    return Status::Internal("corrupt text scan state length");
  }
  *pos = size_t(p);
  matches->resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::memcpy(&(*matches)[i].rid, state.data() + 16 + i * 16, 8);
    std::memcpy(&(*matches)[i].score, state.data() + 24 + i * 16, 8);
  }
  return Status::OK();
}

// Posting source over the index's IOT through server callbacks.
PostingSource MakePostingSource(const std::string& iot_name,
                                ServerContext& ctx) {
  return [iot_name, &ctx](const std::string& term,
                          const PostingVisitor& visit) -> Status {
    return ctx.IotScanPrefix(
        iot_name, {Value::Varchar(term)}, [&visit](const Row& row) {
          return visit(RowId(row[1].AsInteger()), row[2].AsInteger());
        });
  };
}

UniverseSource MakeUniverseSource(const std::string& table_name,
                                  ServerContext& ctx) {
  return [table_name, &ctx](std::vector<RowId>* out) -> Status {
    return ctx.ScanBaseTable(table_name,
                             [out](RowId rid, const Row&) {
                               out->push_back(rid);
                               return true;
                             });
  };
}

// The predicate bounds must admit TRUE (Contains(...) = 1 form, footnote
// 1); anything else is not index-evaluable for a boolean operator.
Status CheckBooleanBounds(const OdciPredInfo& pred) {
  auto truthy = [](const Value& v) {
    return (v.tag() == TypeTag::kBoolean && v.AsBoolean()) ||
           (v.tag() == TypeTag::kInteger && v.AsInteger() != 0) ||
           (v.tag() == TypeTag::kDouble && v.AsDouble() != 0.0);
  };
  if (pred.lower_bound.has_value() && !truthy(*pred.lower_bound)) {
    return Status::NotSupported(
        "text index scan supports only Contains(...) = TRUE predicates");
  }
  if (pred.upper_bound.has_value() && !truthy(*pred.upper_bound)) {
    return Status::NotSupported(
        "text index scan supports only Contains(...) = TRUE predicates");
  }
  return Status::OK();
}

}  // namespace

IndexParameters TextIndexMethods::ParseParams(const std::string& text) {
  IndexParameters params;
  params.SetAccumulatingKey("ignore");
  params.Parse(text);
  return params;
}

Tokenizer TextIndexMethods::MakeTokenizer(const IndexParameters& params) {
  Tokenizer tokenizer(params.Get("language", "English"), {});
  tokenizer.AddStopWords(params.GetList("ignore"));
  return tokenizer;
}

// ---- definition ----

Status TextIndexMethods::Create(const OdciIndexInfo& info,
                                ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(CreateStorage(info, ctx));
  return Rebuild(info, ctx);
}

Status TextIndexMethods::CreateStorage(const OdciIndexInfo& info,
                                       ServerContext& ctx) {
  std::string iot = PostingTableName(info.index_name);
  return ctx.CreateIot(iot, PostingTableSchema(), kPostingKeyColumns);
}

Status TextIndexMethods::Rebuild(const OdciIndexInfo& info,
                                 ServerContext& ctx) {
  std::string iot = PostingTableName(info.index_name);
  IndexParameters params = ParseParams(info.parameters);
  Tokenizer tokenizer = MakeTokenizer(params);
  int col = info.indexed_position();
  if (col < 0) {
    return Status::Internal("text index has no indexed column position");
  }
  Status inner = Status::OK();
  EXI_RETURN_IF_ERROR(ctx.ScanBaseTable(
      info.table_name, [&](RowId rid, const Row& row) {
        const Value& v = row[col];
        if (v.is_null()) return true;
        for (const auto& [token, freq] :
             tokenizer.TokenFrequencies(v.AsVarchar())) {
          inner = ctx.IotUpsert(
              iot, {Value::Varchar(token), Value::Integer(int64_t(rid)),
                    Value::Integer(freq)});
          if (!inner.ok()) return false;
        }
        return true;
      }));
  return inner;
}

Status TextIndexMethods::Alter(const OdciIndexInfo& info,
                               ServerContext& ctx) {
  // Parameter changes (language, stop words) invalidate existing postings:
  // truncate and rebuild from the base table.
  std::string iot = PostingTableName(info.index_name);
  EXI_RETURN_IF_ERROR(ctx.IotTruncate(iot));
  return Rebuild(info, ctx);
}

Status TextIndexMethods::Truncate(const OdciIndexInfo& info,
                                  ServerContext& ctx) {
  return ctx.IotTruncate(PostingTableName(info.index_name));
}

Status TextIndexMethods::Drop(const OdciIndexInfo& info, ServerContext& ctx) {
  return ctx.DropIot(PostingTableName(info.index_name));
}

// ---- maintenance ----

Status TextIndexMethods::InsertDocument(const OdciIndexInfo& info, RowId rid,
                                        const std::string& document,
                                        ServerContext& ctx) {
  std::string iot = PostingTableName(info.index_name);
  Tokenizer tokenizer = MakeTokenizer(ParseParams(info.parameters));
  for (const auto& [token, freq] : tokenizer.TokenFrequencies(document)) {
    EXI_RETURN_IF_ERROR(ctx.IotUpsert(
        iot, {Value::Varchar(token), Value::Integer(int64_t(rid)),
              Value::Integer(freq)}));
  }
  return Status::OK();
}

Status TextIndexMethods::DeleteDocument(const OdciIndexInfo& info, RowId rid,
                                        const std::string& document,
                                        ServerContext& ctx) {
  std::string iot = PostingTableName(info.index_name);
  Tokenizer tokenizer = MakeTokenizer(ParseParams(info.parameters));
  for (const auto& [token, freq] : tokenizer.TokenFrequencies(document)) {
    (void)freq;
    EXI_RETURN_IF_ERROR(ctx.IotDelete(
        iot, {Value::Varchar(token), Value::Integer(int64_t(rid))}));
  }
  return Status::OK();
}

Status TextIndexMethods::Insert(const OdciIndexInfo& info, RowId rid,
                                const Value& new_value, ServerContext& ctx) {
  if (new_value.is_null()) return Status::OK();
  return InsertDocument(info, rid, new_value.AsVarchar(), ctx);
}

Status TextIndexMethods::Delete(const OdciIndexInfo& info, RowId rid,
                                const Value& old_value, ServerContext& ctx) {
  if (old_value.is_null()) return Status::OK();
  return DeleteDocument(info, rid, old_value.AsVarchar(), ctx);
}

Status TextIndexMethods::Update(const OdciIndexInfo& info, RowId rid,
                                const Value& old_value,
                                const Value& new_value, ServerContext& ctx) {
  // "ODCIIndexUpdate should delete the entries corresponding to the old
  // indexed column value ... and insert the new entries" (§2.2.3).
  EXI_RETURN_IF_ERROR(Delete(info, rid, old_value, ctx));
  return Insert(info, rid, new_value, ctx);
}

Status TextIndexMethods::BatchInsert(const OdciIndexInfo& info,
                                     const std::vector<RowId>& rids,
                                     const ValueList& new_values,
                                     ServerContext& ctx) {
  std::string iot = PostingTableName(info.index_name);
  Tokenizer tokenizer = MakeTokenizer(ParseParams(info.parameters));
  for (size_t i = 0; i < rids.size(); ++i) {
    const Value& v = new_values[i];
    if (v.is_null()) continue;
    for (const auto& [token, freq] :
         tokenizer.TokenFrequencies(v.AsVarchar())) {
      EXI_RETURN_IF_ERROR(ctx.IotUpsert(
          iot, {Value::Varchar(token), Value::Integer(int64_t(rids[i])),
                Value::Integer(freq)}));
    }
  }
  return Status::OK();
}

Status TextIndexMethods::BatchDelete(const OdciIndexInfo& info,
                                     const std::vector<RowId>& rids,
                                     const ValueList& old_values,
                                     ServerContext& ctx) {
  std::string iot = PostingTableName(info.index_name);
  Tokenizer tokenizer = MakeTokenizer(ParseParams(info.parameters));
  for (size_t i = 0; i < rids.size(); ++i) {
    const Value& v = old_values[i];
    if (v.is_null()) continue;
    for (const auto& [token, freq] :
         tokenizer.TokenFrequencies(v.AsVarchar())) {
      (void)freq;
      EXI_RETURN_IF_ERROR(ctx.IotDelete(
          iot, {Value::Varchar(token), Value::Integer(int64_t(rids[i]))}));
    }
  }
  return Status::OK();
}

Status TextIndexMethods::BatchUpdate(const OdciIndexInfo& info,
                                     const std::vector<RowId>& rids,
                                     const ValueList& old_values,
                                     const ValueList& new_values,
                                     ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(BatchDelete(info, rids, old_values, ctx));
  return BatchInsert(info, rids, new_values, ctx);
}

// ---- scan ----

Result<OdciScanContext> TextIndexMethods::Start(const OdciIndexInfo& info,
                                                const OdciPredInfo& pred,
                                                ServerContext& ctx) {
  EXI_RETURN_IF_ERROR(CheckBooleanBounds(pred));
  if (pred.args.empty() || pred.args[0].tag() != TypeTag::kVarchar) {
    return Status::InvalidArgument(
        "Contains requires a keyword query string argument");
  }
  std::string error;
  std::unique_ptr<QueryNode> query =
      ParseTextQuery(pred.args[0].AsVarchar(), &error);
  if (query == nullptr) return Status::InvalidArgument(error);

  IndexParameters params = ParseParams(info.parameters);
  Tokenizer tokenizer = MakeTokenizer(params);
  bool use_state =
      EqualsIgnoreCase(params.Get("contextmode", "handle"), "state");
  bool incremental =
      EqualsIgnoreCase(params.Get("mode", "precompute"), "incremental");

  OdciScanContext sctx;
  if (incremental && query->kind == QueryNode::Kind::kTerm &&
      !tokenizer.IsStopWord(query->term)) {
    // Incremental computation: stream the posting list a batch at a time.
    auto ws = std::make_shared<TextScanWorkspace>();
    ws->incremental = true;
    ws->term = query->term;
    sctx.handle = ScanWorkspaceRegistry::Global().Allocate(ws);
    return sctx;
  }

  // Precompute-All: evaluate the full boolean query now; Fetch iterates.
  std::string iot = PostingTableName(info.index_name);
  EXI_ASSIGN_OR_RETURN(
      std::vector<TextMatch> matches,
      EvaluateTextQuery(*query, MakePostingSource(iot, ctx),
                        MakeUniverseSource(info.table_name, ctx)));
  if (use_state) {
    EncodeState(matches, 0, &sctx.state);
  } else {
    auto ws = std::make_shared<TextScanWorkspace>();
    ws->matches = std::move(matches);
    sctx.handle = ScanWorkspaceRegistry::Global().Allocate(ws);
  }
  return sctx;
}

Status TextIndexMethods::Fetch(const OdciIndexInfo& info,
                               OdciScanContext& sctx, size_t max_rows,
                               OdciFetchBatch* out, ServerContext& ctx) {
  if (!sctx.uses_handle()) {
    // Return State: the full remaining result set rides in the context.
    size_t pos;
    std::vector<TextMatch> matches;
    EXI_RETURN_IF_ERROR(DecodeState(sctx.state, &pos, &matches));
    size_t end = std::min(matches.size(), pos + max_rows);
    for (size_t i = pos; i < end; ++i) {
      out->rids.push_back(matches[i].rid);
      out->ancillary.push_back(Value::Integer(matches[i].score));
    }
    EncodeState(matches, end, &sctx.state);
    return Status::OK();
  }
  EXI_ASSIGN_OR_RETURN(
      std::shared_ptr<TextScanWorkspace> ws,
      ScanWorkspaceRegistry::Global().GetAs<TextScanWorkspace>(sctx.handle));
  if (!ws->incremental) {
    size_t end = std::min(ws->matches.size(), ws->pos + max_rows);
    for (size_t i = ws->pos; i < end; ++i) {
      out->rids.push_back(ws->matches[i].rid);
      out->ancillary.push_back(Value::Integer(ws->matches[i].score));
    }
    ws->pos = end;
    return Status::OK();
  }
  // Incremental: resume the IOT cursor after (term, last_rid).
  std::string iot = PostingTableName(info.index_name);
  CompositeKey lo = {Value::Varchar(ws->term),
                     Value::Integer(int64_t(ws->last_rid))};
  CompositeKey start_prefix = {Value::Varchar(ws->term)};
  const CompositeKey* lo_key = ws->started ? &lo : &start_prefix;
  std::string term = ws->term;
  EXI_RETURN_IF_ERROR(ctx.IotScanRange(
      iot, lo_key, /*lo_inclusive=*/!ws->started, /*hi=*/nullptr, true,
      [&](const Row& row) {
        if (row[0].AsVarchar() != term) return false;  // past this term
        out->rids.push_back(RowId(row[1].AsInteger()));
        out->ancillary.push_back(Value::Integer(row[2].AsInteger()));
        return out->rids.size() < max_rows;
      }));
  if (!out->rids.empty()) {
    ws->started = true;
    ws->last_rid = out->rids.back();
  }
  return Status::OK();
}

Status TextIndexMethods::Close(const OdciIndexInfo& info,
                               OdciScanContext& sctx, ServerContext& ctx) {
  (void)info;
  (void)ctx;
  if (sctx.uses_handle()) {
    return ScanWorkspaceRegistry::Global().Release(sctx.handle);
  }
  sctx.state.clear();
  return Status::OK();
}

// ---- optimizer statistics ----

namespace {

// Document frequency of one term (posting-list length).
Result<uint64_t> TermDocFreq(const std::string& iot_name,
                             const std::string& term, ServerContext& ctx) {
  uint64_t df = 0;
  EXI_RETURN_IF_ERROR(ctx.IotScanPrefix(iot_name, {Value::Varchar(term)},
                                        [&df](const Row&) {
                                          ++df;
                                          return true;
                                        }));
  return df;
}

Result<double> QuerySelectivity(const QueryNode& node,
                                const std::string& iot_name,
                                uint64_t table_rows, ServerContext& ctx) {
  if (table_rows == 0) return 0.0;
  switch (node.kind) {
    case QueryNode::Kind::kTerm: {
      EXI_ASSIGN_OR_RETURN(uint64_t df, TermDocFreq(iot_name, node.term, ctx));
      return double(df) / double(table_rows);
    }
    case QueryNode::Kind::kAnd: {
      EXI_ASSIGN_OR_RETURN(
          double a, QuerySelectivity(*node.children[0], iot_name,
                                     table_rows, ctx));
      EXI_ASSIGN_OR_RETURN(
          double b, QuerySelectivity(*node.children[1], iot_name,
                                     table_rows, ctx));
      return a * b;  // independence assumption
    }
    case QueryNode::Kind::kOr: {
      EXI_ASSIGN_OR_RETURN(
          double a, QuerySelectivity(*node.children[0], iot_name,
                                     table_rows, ctx));
      EXI_ASSIGN_OR_RETURN(
          double b, QuerySelectivity(*node.children[1], iot_name,
                                     table_rows, ctx));
      return a + b - a * b;
    }
    case QueryNode::Kind::kNot: {
      EXI_ASSIGN_OR_RETURN(
          double a, QuerySelectivity(*node.children[0], iot_name,
                                     table_rows, ctx));
      return 1.0 - a;
    }
  }
  return 0.05;
}

}  // namespace

Result<double> TextStats::Selectivity(const OdciIndexInfo& info,
                                      const OdciPredInfo& pred,
                                      uint64_t table_rows,
                                      ServerContext& ctx) {
  if (pred.args.empty() || pred.args[0].tag() != TypeTag::kVarchar) {
    return 0.05;
  }
  std::string error;
  std::unique_ptr<QueryNode> query =
      ParseTextQuery(pred.args[0].AsVarchar(), &error);
  if (query == nullptr) return 0.05;
  EXI_ASSIGN_OR_RETURN(
      double sel, QuerySelectivity(*query, PostingTableName(info.index_name),
                                   table_rows, ctx));
  if (sel < 0.0) sel = 0.0;
  if (sel > 1.0) sel = 1.0;
  return sel;
}

Result<double> TextStats::IndexCost(const OdciIndexInfo& info,
                                    const OdciPredInfo& pred,
                                    double selectivity, uint64_t table_rows,
                                    ServerContext& ctx) {
  // Cost: scan start + posting reads for each query term.
  double cost = 10.0;
  if (!pred.args.empty() && pred.args[0].tag() == TypeTag::kVarchar) {
    std::string error;
    std::unique_ptr<QueryNode> query =
        ParseTextQuery(pred.args[0].AsVarchar(), &error);
    if (query != nullptr) {
      std::vector<std::string> terms;
      query->CollectTerms(&terms);
      for (const std::string& term : terms) {
        EXI_ASSIGN_OR_RETURN(
            uint64_t df,
            TermDocFreq(PostingTableName(info.index_name), term, ctx));
        cost += double(df) * 0.2;  // posting-entry read is cheap
      }
    }
  }
  cost += selectivity * double(table_rows) * 0.1;  // result materialization
  return cost;
}

// ---- functional implementation & installation ----

Status InstallTextCartridge(Connection* conn) {
  Catalog& catalog = conn->db()->catalog();

  // Functional implementation of Contains (§2.2.1): evaluated per row when
  // the optimizer does not pick the domain index.
  EXI_RETURN_IF_ERROR(catalog.functions().Register(
      "TextContains", [](const ValueList& args) -> Result<Value> {
        if (args.size() != 2) {
          return Status::InvalidArgument("TextContains expects 2 arguments");
        }
        if (args[0].is_null() || args[1].is_null()) return Value::Null();
        if (args[0].tag() != TypeTag::kVarchar ||
            args[1].tag() != TypeTag::kVarchar) {
          return Status::TypeMismatch("TextContains expects VARCHAR");
        }
        std::string error;
        std::unique_ptr<QueryNode> query =
            ParseTextQuery(args[1].AsVarchar(), &error);
        if (query == nullptr) return Status::InvalidArgument(error);
        Tokenizer tokenizer;
        return Value::Boolean(
            MatchesDocument(*query, tokenizer, args[0].AsVarchar()));
      }));

  // Implementation type holding the ODCIIndex routines (§2.2.3).
  EXI_RETURN_IF_ERROR(catalog.implementations().Register(
      "TextIndexMethods",
      [] { return std::make_shared<TextIndexMethods>(); },
      [] { return std::make_shared<TextStats>(); }));

  // Cartridge DDL (§2.2.2, §2.2.4).
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE OPERATOR Contains BINDING (VARCHAR, VARCHAR) "
                    "RETURN BOOLEAN USING TextContains")
          .status());
  EXI_RETURN_IF_ERROR(
      conn->Execute("CREATE INDEXTYPE TextIndexType FOR "
                    "Contains(VARCHAR, VARCHAR) USING TextIndexMethods")
          .status());
  return Status::OK();
}

}  // namespace exi::text
