#ifndef EXTIDX_CARTRIDGE_TEXT_TOKENIZER_H_
#define EXTIDX_CARTRIDGE_TEXT_TOKENIZER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace exi::text {

// Lexical analyzer for the text cartridge.  Configured by the domain
// index's PARAMETERS string (§2.3): ':Language English' selects the
// analyzer (case folding rules) and ':Ignore the a an' the stop-word list,
// exactly the example the paper gives.
class Tokenizer {
 public:
  Tokenizer() = default;
  Tokenizer(std::string language, std::set<std::string> stop_words)
      : language_(std::move(language)), stop_words_(std::move(stop_words)) {}

  const std::string& language() const { return language_; }
  const std::set<std::string>& stop_words() const { return stop_words_; }

  void AddStopWords(const std::vector<std::string>& words);

  // Lower-cased alphanumeric tokens in document order, stop words removed.
  std::vector<std::string> Tokenize(const std::string& document) const;

  // Distinct tokens with their in-document frequencies.
  std::map<std::string, int64_t> TokenFrequencies(
      const std::string& document) const;

  bool IsStopWord(const std::string& token) const;

 private:
  std::string language_ = "English";
  std::set<std::string> stop_words_;
};

// Boolean keyword query over the inverted index, e.g. 'Oracle AND UNIX',
// '(java OR python) AND NOT cobol'.  AND binds tighter than OR; NOT is a
// prefix operator; bare adjacency is implicit AND.
struct QueryNode {
  enum class Kind { kTerm, kAnd, kOr, kNot };
  Kind kind;
  std::string term;                          // kTerm
  std::vector<std::unique_ptr<QueryNode>> children;

  std::string ToString() const;

  // Collects the terms appearing anywhere in the query.
  void CollectTerms(std::vector<std::string>* out) const;
};

// Parses a keyword query; tokens are case-folded like document tokens.
// Returns an error status message via nullptr + `error` out-param style is
// avoided; a malformed query yields a null node and `*error` is set.
std::unique_ptr<QueryNode> ParseTextQuery(const std::string& query,
                                          std::string* error);

}  // namespace exi::text

#endif  // EXTIDX_CARTRIDGE_TEXT_TOKENIZER_H_
