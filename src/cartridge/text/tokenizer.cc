#include "cartridge/text/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace exi::text {

void Tokenizer::AddStopWords(const std::vector<std::string>& words) {
  for (const std::string& w : words) stop_words_.insert(ToLower(w));
}

bool Tokenizer::IsStopWord(const std::string& token) const {
  return stop_words_.count(token) > 0;
}

std::vector<std::string> Tokenizer::Tokenize(
    const std::string& document) const {
  std::vector<std::string> out;
  std::string current;
  for (char c : document) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      if (!IsStopWord(current)) out.push_back(current);
      current.clear();
    }
  }
  if (!current.empty() && !IsStopWord(current)) out.push_back(current);
  return out;
}

std::map<std::string, int64_t> Tokenizer::TokenFrequencies(
    const std::string& document) const {
  std::map<std::string, int64_t> freqs;
  for (const std::string& tok : Tokenize(document)) freqs[tok]++;
  return freqs;
}

// ---- query parser ----

std::string QueryNode::ToString() const {
  switch (kind) {
    case Kind::kTerm:
      return term;
    case Kind::kNot:
      return "NOT " + children[0]->ToString();
    case Kind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case Kind::kOr:
      return "(" + children[0]->ToString() + " OR " +
             children[1]->ToString() + ")";
  }
  return "?";
}

void QueryNode::CollectTerms(std::vector<std::string>* out) const {
  if (kind == Kind::kTerm) {
    out->push_back(term);
    return;
  }
  for (const auto& c : children) c->CollectTerms(out);
}

namespace {

struct QueryParser {
  std::vector<std::string> tokens;
  size_t pos = 0;
  std::string error;

  const std::string* Peek() const {
    return pos < tokens.size() ? &tokens[pos] : nullptr;
  }
  bool Match(const char* kw) {
    if (pos < tokens.size() && EqualsIgnoreCase(tokens[pos], kw)) {
      ++pos;
      return true;
    }
    return false;
  }

  // or_expr := and_expr (OR and_expr)*
  std::unique_ptr<QueryNode> ParseOr() {
    auto lhs = ParseAnd();
    if (lhs == nullptr) return nullptr;
    while (Match("OR")) {
      auto rhs = ParseAnd();
      if (rhs == nullptr) return nullptr;
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryNode::Kind::kOr;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  // and_expr := unary ((AND)? unary)*   -- adjacency is implicit AND
  std::unique_ptr<QueryNode> ParseAnd() {
    auto lhs = ParseUnary();
    if (lhs == nullptr) return nullptr;
    while (true) {
      bool had_and = Match("AND");
      const std::string* next = Peek();
      if (next == nullptr || EqualsIgnoreCase(*next, "OR") ||
          *next == ")") {
        if (had_and) {
          error = "dangling AND";
          return nullptr;
        }
        break;
      }
      auto rhs = ParseUnary();
      if (rhs == nullptr) return nullptr;
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryNode::Kind::kAnd;
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  // unary := NOT unary | ( or_expr ) | term
  std::unique_ptr<QueryNode> ParseUnary() {
    if (Match("NOT")) {
      auto operand = ParseUnary();
      if (operand == nullptr) return nullptr;
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryNode::Kind::kNot;
      node->children.push_back(std::move(operand));
      return node;
    }
    if (Match("(")) {
      auto inner = ParseOr();
      if (inner == nullptr) return nullptr;
      if (!Match(")")) {
        error = "missing ')'";
        return nullptr;
      }
      return inner;
    }
    const std::string* t = Peek();
    if (t == nullptr || *t == ")" || EqualsIgnoreCase(*t, "AND") ||
        EqualsIgnoreCase(*t, "OR")) {
      error = "expected a term";
      return nullptr;
    }
    auto node = std::make_unique<QueryNode>();
    node->kind = QueryNode::Kind::kTerm;
    node->term = ToLower(*t);
    ++pos;
    return node;
  }
};

}  // namespace

std::unique_ptr<QueryNode> ParseTextQuery(const std::string& query,
                                          std::string* error) {
  // Lex: words and parentheses.
  QueryParser parser;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      parser.tokens.push_back(current);
      current.clear();
    }
  };
  for (char c : query) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(c);
    } else if (c == '(' || c == ')') {
      flush();
      parser.tokens.push_back(std::string(1, c));
    } else {
      flush();
    }
  }
  flush();
  if (parser.tokens.empty()) {
    *error = "empty text query";
    return nullptr;
  }
  auto root = parser.ParseOr();
  if (root == nullptr) {
    *error = parser.error.empty() ? "malformed text query" : parser.error;
    return nullptr;
  }
  if (parser.pos != parser.tokens.size()) {
    *error = "trailing tokens in text query";
    return nullptr;
  }
  return root;
}

}  // namespace exi::text
