#include "cartridge/text/legacy_text.h"

#include "cartridge/text/inverted_index.h"
#include "cartridge/text/tokenizer.h"
#include "common/metrics.h"

namespace exi::text {

Status LegacyTextQuery(
    Database* db, const std::string& index_name, const std::string& query,
    const std::function<void(RowId, const Row&)>& on_row) {
  Catalog& catalog = db->catalog();
  EXI_ASSIGN_OR_RETURN(IndexInfo * index, catalog.GetIndex(index_name));
  if (!index->is_domain()) {
    return Status::InvalidArgument(index_name + " is not a text index");
  }
  EXI_ASSIGN_OR_RETURN(HeapTable * base, catalog.GetTable(index->table));
  EXI_ASSIGN_OR_RETURN(Iot * postings,
                       catalog.GetIot(PostingTableName(index_name)));

  std::string error;
  std::unique_ptr<QueryNode> root = ParseTextQuery(query, &error);
  if (root == nullptr) return Status::InvalidArgument(error);

  // --- Step 1: evaluate the text predicate into a temporary result table.
  PostingSource source = [postings](const std::string& term,
                                    const PostingVisitor& visit) -> Status {
    postings->ScanPrefix({Value::Varchar(term)}, [&visit](const Row& row) {
      return visit(RowId(row[1].AsInteger()), row[2].AsInteger());
    });
    return Status::OK();
  };
  UniverseSource universe = [base](std::vector<RowId>* out) -> Status {
    for (auto it = base->Scan(); it.Valid(); it.Next()) {
      out->push_back(it.row_id());
    }
    return Status::OK();
  };
  EXI_ASSIGN_OR_RETURN(std::vector<TextMatch> matches,
                       EvaluateTextQuery(*root, source, universe));

  // Materialize rowids into a scratch table — the extra I/O the paper's
  // integration eliminated.
  std::string temp_name = index_name + "$legacy_results";
  if (catalog.IndexTableExists(temp_name)) {
    EXI_RETURN_IF_ERROR(catalog.DropIndexTable(temp_name));
  }
  Schema temp_schema;
  temp_schema.AddColumn(Column{"rid", DataType::Integer(), true});
  EXI_RETURN_IF_ERROR(catalog.CreateIndexTable(temp_name, temp_schema));
  EXI_ASSIGN_OR_RETURN(HeapTable * temp, catalog.GetIndexTable(temp_name));
  for (const TextMatch& m : matches) {
    EXI_RETURN_IF_ERROR(
        temp->Insert({Value::Integer(int64_t(m.rid))}).status());
    GlobalMetrics().temp_rows_written++;
  }

  // --- Step 2: join the temporary table back to the base table.
  for (auto it = temp->Scan(); it.Valid(); it.Next()) {
    GlobalMetrics().temp_rows_read++;
    RowId rid = RowId(it.row()[0].AsInteger());
    Result<Row> row = base->Get(rid);
    if (!row.ok()) continue;
    on_row(rid, *row);
  }
  return catalog.DropIndexTable(temp_name);
}

}  // namespace exi::text
