#ifndef EXTIDX_CARTRIDGE_PARAMS_H_
#define EXTIDX_CARTRIDGE_PARAMS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace exi {

// Parses the uninterpreted PARAMETERS string of a domain index (§2.3).
// The conventional cartridge format is colon-prefixed keys followed by
// whitespace-separated values, e.g.
//   ':Language English :Ignore the a an'
// Keys are case-insensitive; a repeated key replaces the earlier values.
class IndexParameters {
 public:
  IndexParameters() = default;
  explicit IndexParameters(const std::string& text) { Parse(text); }

  // Keys that accumulate values across repeated occurrences instead of
  // replacing them (e.g. the text cartridge's stop-word list, which
  // `ALTER INDEX ... PARAMETERS (':Ignore COBOL')` extends, §2.3).
  void SetAccumulatingKey(const std::string& key);

  // Parses `text`, merging into (and overriding, unless accumulating)
  // existing keys — this is how ALTER INDEX ... PARAMETERS incrementally
  // updates settings (the engine concatenates parameter strings).
  void Parse(const std::string& text);

  bool Has(const std::string& key) const;

  // First value of the key, or `def`.
  std::string Get(const std::string& key, const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  double GetDouble(const std::string& key, double def) const;

  // All values of the key (e.g. the stop-word list).
  std::vector<std::string> GetList(const std::string& key) const;

  // Serializes back to the canonical ':Key v1 v2 ...' form.
  std::string ToString() const;

 private:
  std::map<std::string, std::vector<std::string>> entries_;
  std::set<std::string> accumulating_;
};

}  // namespace exi

#endif  // EXTIDX_CARTRIDGE_PARAMS_H_
