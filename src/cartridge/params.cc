#include "cartridge/params.h"

#include <cstdlib>

#include "common/strings.h"

namespace exi {

void IndexParameters::SetAccumulatingKey(const std::string& key) {
  accumulating_.insert(ToLower(key));
}

void IndexParameters::Parse(const std::string& text) {
  std::vector<std::string> tokens = SplitAny(text, " \t\r\n");
  std::string current_key;
  for (const std::string& tok : tokens) {
    if (tok.size() > 1 && tok[0] == ':') {
      current_key = ToLower(tok.substr(1));
      if (accumulating_.count(current_key) == 0) {
        entries_[current_key] = {};  // replace earlier values
      }
    } else if (!current_key.empty()) {
      entries_[current_key].push_back(tok);
    }
  }
}

bool IndexParameters::Has(const std::string& key) const {
  return entries_.count(ToLower(key)) > 0;
}

std::string IndexParameters::Get(const std::string& key,
                                 const std::string& def) const {
  auto it = entries_.find(ToLower(key));
  if (it == entries_.end() || it->second.empty()) return def;
  return it->second[0];
}

int64_t IndexParameters::GetInt(const std::string& key, int64_t def) const {
  auto it = entries_.find(ToLower(key));
  if (it == entries_.end() || it->second.empty()) return def;
  return std::strtoll(it->second[0].c_str(), nullptr, 10);
}

double IndexParameters::GetDouble(const std::string& key, double def) const {
  auto it = entries_.find(ToLower(key));
  if (it == entries_.end() || it->second.empty()) return def;
  return std::strtod(it->second[0].c_str(), nullptr);
}

std::vector<std::string> IndexParameters::GetList(
    const std::string& key) const {
  auto it = entries_.find(ToLower(key));
  if (it == entries_.end()) return {};
  return it->second;
}

std::string IndexParameters::ToString() const {
  std::string out;
  for (const auto& [key, values] : entries_) {
    if (!out.empty()) out += " ";
    out += ":" + key;
    for (const std::string& v : values) out += " " + v;
  }
  return out;
}

}  // namespace exi
