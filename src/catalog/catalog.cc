#include "catalog/catalog.h"

#include <functional>

#include "common/strings.h"
#include "index/key.h"

namespace exi {

const PartitionDef* PartitionScheme::Find(const std::string& name) const {
  for (const PartitionDef& p : partitions) {
    if (EqualsIgnoreCase(p.name, name)) return &p;
  }
  return nullptr;
}

size_t PartitionScheme::HashBucket(const Value& key, size_t fanout) {
  return std::hash<std::string>{}(key.ToString()) % fanout;
}

Result<const PartitionDef*> PartitionScheme::Route(const Value& key) const {
  if (partitions.empty()) {
    return Status::Internal("partition scheme has no partitions");
  }
  if (method == PartitionMethod::kHash) {
    return &partitions[HashBucket(key, partitions.size())];
  }
  // RANGE: first partition whose exclusive upper bound admits the key
  // (partitions are kept sorted by ascending bound, MAXVALUE last).
  for (const PartitionDef& p : partitions) {
    if (!p.upper_bound.has_value()) return &p;  // MAXVALUE
    if (TotalOrderCompare(key, *p.upper_bound) < 0) return &p;
  }
  return Status::InvalidArgument(
      "inserted partition key " + key.ToString() +
      " does not map to any partition (ORA-14400)");
}

OdciIndexInfo IndexInfo::ToOdciInfoForPartition(
    const Schema& table_schema, const std::string& partition) const {
  OdciIndexInfo info = ToOdciInfo(table_schema);
  info.index_name = name + "#" + partition;
  return info;
}

OdciIndexInfo IndexInfo::ToOdciInfo(const Schema& table_schema) const {
  OdciIndexInfo info;
  info.index_name = name;
  info.table_name = table;
  info.column_names = columns;
  for (const std::string& col : columns) {
    int idx = table_schema.FindColumn(col);
    info.column_types.push_back(idx >= 0 ? table_schema.column(idx).type
                                         : DataType::Null());
    info.column_positions.push_back(idx);
  }
  info.parameters = parameters;
  return info;
}

std::string Catalog::Key(const std::string& name) { return ToLower(name); }

const char* IndexStatusName(IndexStatus status) {
  switch (status) {
    case IndexStatus::kValid:
      return "VALID";
    case IndexStatus::kInProgress:
      return "IN_PROGRESS";
    case IndexStatus::kFailed:
      return "FAILED";
    case IndexStatus::kUnusable:
      return "UNUSABLE";
  }
  return "UNKNOWN";
}

// ---- tables ----

Status Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = Key(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  TableInfo info;
  info.heap = std::make_unique<HeapTable>(name, std::move(schema));
  info.stats.columns.resize(info.heap->schema().size());
  tables_[key] = std::move(info);
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = Key(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  if (!it->second.index_names.empty()) {
    return Status::InvalidArgument("table " + name + " still has " +
                                   std::to_string(
                                       it->second.index_names.size()) +
                                   " index(es); drop them first");
  }
  tables_.erase(it);
  return Status::OK();
}

Result<HeapTable*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return it->second.heap.get();
}

Result<const HeapTable*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return const_cast<const HeapTable*>(it->second.heap.get());
}

Result<TableInfo*> Catalog::GetTableInfo(const std::string& name) {
  auto it = tables_.find(Key(name));
  if (it == tables_.end()) return Status::NotFound("no table: " + name);
  return &it->second;
}

bool Catalog::TableExists(const std::string& name) const {
  return tables_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, info] : tables_) names.push_back(info.heap->name());
  return names;
}

// ---- object types ----

Status Catalog::RegisterObjectType(ObjectTypeDef def) {
  std::string key = Key(def.name);
  if (object_types_.count(key) > 0) {
    return Status::AlreadyExists("object type exists: " + def.name);
  }
  object_types_[key] = std::move(def);
  return Status::OK();
}

Result<const ObjectTypeDef*> Catalog::GetObjectType(
    const std::string& name) const {
  auto it = object_types_.find(Key(name));
  if (it == object_types_.end()) {
    return Status::NotFound("no object type: " + name);
  }
  return &it->second;
}

// ---- operators ----

Status Catalog::CreateOperator(OperatorDef def) {
  std::string key = Key(def.name);
  if (operators_.count(key) > 0) {
    return Status::AlreadyExists("operator exists: " + def.name);
  }
  for (const OperatorBinding& b : def.bindings) {
    if (!functions_.Contains(b.function_name)) {
      return Status::NotFound("operator " + def.name +
                              " binding references unregistered function: " +
                              b.function_name);
    }
  }
  operators_[key] = std::move(def);
  return Status::OK();
}

Status Catalog::DropOperator(const std::string& name) {
  // An operator referenced by an indextype cannot be dropped.
  for (const auto& [itkey, itdef] : indextypes_) {
    for (const SupportedOperator& so : itdef.operators) {
      if (EqualsIgnoreCase(so.operator_name, name)) {
        return Status::InvalidArgument("operator " + name +
                                       " is referenced by indextype " +
                                       itdef.name);
      }
    }
  }
  if (operators_.erase(Key(name)) == 0) {
    return Status::NotFound("no operator: " + name);
  }
  return Status::OK();
}

Result<const OperatorDef*> Catalog::GetOperator(
    const std::string& name) const {
  auto it = operators_.find(Key(name));
  if (it == operators_.end()) return Status::NotFound("no operator: " + name);
  return &it->second;
}

std::vector<const OperatorDef*> Catalog::Operators() const {
  std::vector<const OperatorDef*> out;
  for (const auto& [key, def] : operators_) out.push_back(&def);
  return out;
}

bool Catalog::OperatorExists(const std::string& name) const {
  return operators_.count(Key(name)) > 0;
}

// ---- indextypes ----

Status Catalog::CreateIndexType(IndexTypeDef def) {
  std::string key = Key(def.name);
  if (indextypes_.count(key) > 0) {
    return Status::AlreadyExists("indextype exists: " + def.name);
  }
  for (const SupportedOperator& so : def.operators) {
    if (operators_.count(Key(so.operator_name)) == 0) {
      return Status::NotFound("indextype " + def.name +
                              " references unknown operator: " +
                              so.operator_name);
    }
  }
  if (!implementations_.Contains(def.implementation)) {
    return Status::NotFound("indextype " + def.name +
                            " references unregistered implementation: " +
                            def.implementation);
  }
  indextypes_[key] = std::move(def);
  return Status::OK();
}

Status Catalog::DropIndexType(const std::string& name) {
  for (const auto& [ikey, idx] : indexes_) {
    if (EqualsIgnoreCase(idx->indextype, name)) {
      return Status::InvalidArgument("indextype " + name +
                                     " is used by index " + idx->name);
    }
  }
  if (indextypes_.erase(Key(name)) == 0) {
    return Status::NotFound("no indextype: " + name);
  }
  return Status::OK();
}

Result<const IndexTypeDef*> Catalog::GetIndexType(
    const std::string& name) const {
  auto it = indextypes_.find(Key(name));
  if (it == indextypes_.end()) {
    return Status::NotFound("no indextype: " + name);
  }
  return &it->second;
}

std::vector<const IndexTypeDef*> Catalog::IndexTypes() const {
  std::vector<const IndexTypeDef*> out;
  for (const auto& [key, def] : indextypes_) out.push_back(&def);
  return out;
}

// ---- indexes ----

Status Catalog::AddIndex(std::unique_ptr<IndexInfo> info) {
  std::string key = Key(info->name);
  if (indexes_.count(key) > 0) {
    return Status::AlreadyExists("index exists: " + info->name);
  }
  auto table_it = tables_.find(Key(info->table));
  if (table_it == tables_.end()) {
    return Status::NotFound("no table: " + info->table);
  }
  table_it->second.index_names.push_back(info->name);
  indexes_[key] = std::move(info);
  return Status::OK();
}

Status Catalog::RemoveIndex(const std::string& name) {
  auto it = indexes_.find(Key(name));
  if (it == indexes_.end()) return Status::NotFound("no index: " + name);
  auto table_it = tables_.find(Key(it->second->table));
  if (table_it != tables_.end()) {
    auto& names = table_it->second.index_names;
    for (size_t i = 0; i < names.size(); ++i) {
      if (EqualsIgnoreCase(names[i], name)) {
        names.erase(names.begin() + i);
        break;
      }
    }
  }
  indexes_.erase(it);
  return Status::OK();
}

Result<IndexInfo*> Catalog::GetIndex(const std::string& name) {
  auto it = indexes_.find(Key(name));
  if (it == indexes_.end()) return Status::NotFound("no index: " + name);
  return it->second.get();
}

bool Catalog::IndexExists(const std::string& name) const {
  return indexes_.count(Key(name)) > 0;
}

std::vector<IndexInfo*> Catalog::IndexesOnTable(const std::string& table) {
  std::vector<IndexInfo*> out;
  for (auto& [key, idx] : indexes_) {
    if (EqualsIgnoreCase(idx->table, table)) out.push_back(idx.get());
  }
  return out;
}

std::vector<const IndexInfo*> Catalog::Indexes() const {
  std::vector<const IndexInfo*> out;
  for (const auto& [key, idx] : indexes_) out.push_back(idx.get());
  return out;
}

std::vector<IndexInfo*> Catalog::IndexesOnColumn(const std::string& table,
                                                 const std::string& column) {
  std::vector<IndexInfo*> out;
  for (IndexInfo* idx : IndexesOnTable(table)) {
    if (!idx->columns.empty() && EqualsIgnoreCase(idx->columns[0], column)) {
      out.push_back(idx);
    }
  }
  return out;
}

// ---- cartridge index-data storage ----

Status Catalog::CreateIot(const std::string& name, Schema schema,
                          size_t key_cols) {
  std::string key = Key(name);
  if (iots_.count(key) > 0) {
    return Status::AlreadyExists("IOT exists: " + name);
  }
  if (key_cols == 0 || key_cols > schema.size()) {
    return Status::InvalidArgument("bad key column count for IOT " + name);
  }
  iots_[key] = std::make_unique<Iot>(name, std::move(schema), key_cols);
  return Status::OK();
}

Status Catalog::DropIot(const std::string& name) {
  if (iots_.erase(Key(name)) == 0) {
    return Status::NotFound("no IOT: " + name);
  }
  return Status::OK();
}

Result<Iot*> Catalog::GetIot(const std::string& name) {
  auto it = iots_.find(Key(name));
  if (it == iots_.end()) return Status::NotFound("no IOT: " + name);
  return it->second.get();
}

Result<const Iot*> Catalog::GetIot(const std::string& name) const {
  auto it = iots_.find(Key(name));
  if (it == iots_.end()) return Status::NotFound("no IOT: " + name);
  return const_cast<const Iot*>(it->second.get());
}

bool Catalog::IotExists(const std::string& name) const {
  return iots_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::IotNames() const {
  std::vector<std::string> names;
  for (const auto& [key, iot] : iots_) names.push_back(iot->name());
  return names;
}

Status Catalog::CreateIndexTable(const std::string& name, Schema schema) {
  std::string key = Key(name);
  if (index_tables_.count(key) > 0) {
    return Status::AlreadyExists("index table exists: " + name);
  }
  index_tables_[key] = std::make_unique<HeapTable>(name, std::move(schema));
  return Status::OK();
}

Status Catalog::DropIndexTable(const std::string& name) {
  if (index_tables_.erase(Key(name)) == 0) {
    return Status::NotFound("no index table: " + name);
  }
  return Status::OK();
}

Result<HeapTable*> Catalog::GetIndexTable(const std::string& name) {
  auto it = index_tables_.find(Key(name));
  if (it == index_tables_.end()) {
    return Status::NotFound("no index table: " + name);
  }
  return it->second.get();
}

bool Catalog::IndexTableExists(const std::string& name) const {
  return index_tables_.count(Key(name)) > 0;
}

std::vector<std::string> Catalog::IndexTableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, table] : index_tables_) names.push_back(table->name());
  return names;
}

Result<FileStore*> Catalog::GetOrCreateFileStore(
    const std::string& store_name) {
  std::string key = Key(store_name);
  auto it = file_stores_.find(key);
  if (it != file_stores_.end()) return it->second.get();
  auto store =
      std::make_unique<FileStore>(external_root_ + "/" + key);
  FileStore* ptr = store.get();
  file_stores_[key] = std::move(store);
  return ptr;
}

}  // namespace exi
