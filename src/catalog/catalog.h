#ifndef EXTIDX_CATALOG_CATALOG_H_
#define EXTIDX_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/indextype.h"
#include "core/odci.h"
#include "core/operator_registry.h"
#include "index/builtin_index.h"
#include "index/iot.h"
#include "storage/file_store.h"
#include "storage/heap_table.h"
#include "storage/lob_store.h"
#include "types/datatype.h"
#include "types/schema.h"

namespace exi {

// Per-column statistics gathered by ANALYZE; stored in the dictionary like
// Oracle's DBA_TAB_COLUMNS stats and consumed by the cost-based optimizer.
struct ColumnStats {
  uint64_t distinct_values = 0;
  uint64_t null_count = 0;
  std::optional<Value> min;
  std::optional<Value> max;
};

struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  // positional against the table schema
  bool analyzed = false;
};

// Dictionary record for an index (built-in or domain).
struct IndexInfo {
  std::string name;
  std::string table;
  std::vector<std::string> columns;

  // Built-in index: non-null access structure.
  std::unique_ptr<BuiltinIndex> builtin;

  // Domain index: indextype name, uninterpreted PARAMETERS string, and the
  // ODCIIndex implementation instance managing this index.
  std::string indextype;
  std::string parameters;
  std::shared_ptr<OdciIndex> domain_impl;
  std::shared_ptr<OdciStats> domain_stats;  // may be null

  bool is_domain() const { return domain_impl != nullptr; }

  // Metadata bundle passed into every ODCI routine for this index.
  OdciIndexInfo ToOdciInfo(const Schema& table_schema) const;
};

// Dictionary record for a table plus the names of its indexes.
struct TableInfo {
  std::unique_ptr<HeapTable> heap;
  std::vector<std::string> index_names;
  TableStats stats;
};

// The data dictionary (§2: operators and indextypes are "top level schema
// objects").  Owns every schema object and the cartridge-visible storage
// namespaces (IOTs, index-data heap tables, LOB store, external file
// stores).  Name lookups are case-insensitive, as in SQL.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // ---- tables ----
  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);  // caller drops indexes first
  Result<HeapTable*> GetTable(const std::string& name);
  Result<const HeapTable*> GetTable(const std::string& name) const;
  Result<TableInfo*> GetTableInfo(const std::string& name);
  bool TableExists(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // ---- object types ----
  Status RegisterObjectType(ObjectTypeDef def);
  Result<const ObjectTypeDef*> GetObjectType(const std::string& name) const;

  // ---- operators ----
  Status CreateOperator(OperatorDef def);
  Status DropOperator(const std::string& name);
  Result<const OperatorDef*> GetOperator(const std::string& name) const;
  bool OperatorExists(const std::string& name) const;
  std::vector<const OperatorDef*> Operators() const;

  // ---- indextypes ----
  Status CreateIndexType(IndexTypeDef def);
  Status DropIndexType(const std::string& name);
  Result<const IndexTypeDef*> GetIndexType(const std::string& name) const;
  std::vector<const IndexTypeDef*> IndexTypes() const;

  // ---- indexes ----
  Status AddIndex(std::unique_ptr<IndexInfo> info);
  Status RemoveIndex(const std::string& name);
  Result<IndexInfo*> GetIndex(const std::string& name);
  bool IndexExists(const std::string& name) const;
  // All indexes on `table`; optionally only those covering `column` as the
  // leading indexed column.
  std::vector<IndexInfo*> IndexesOnTable(const std::string& table);
  std::vector<const IndexInfo*> Indexes() const;
  std::vector<IndexInfo*> IndexesOnColumn(const std::string& table,
                                          const std::string& column);

  // ---- registries (cartridge developer hooks) ----
  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }
  ImplementationRegistry& implementations() { return implementations_; }
  const ImplementationRegistry& implementations() const {
    return implementations_;
  }

  // ---- cartridge index-data storage namespaces ----
  Status CreateIot(const std::string& name, Schema schema, size_t key_cols);
  Status DropIot(const std::string& name);
  Result<Iot*> GetIot(const std::string& name);
  Result<const Iot*> GetIot(const std::string& name) const;
  bool IotExists(const std::string& name) const;

  Status CreateIndexTable(const std::string& name, Schema schema);
  Status DropIndexTable(const std::string& name);
  Result<HeapTable*> GetIndexTable(const std::string& name);
  bool IndexTableExists(const std::string& name) const;

  LobStore& lobs() { return lobs_; }
  const LobStore& lobs() const { return lobs_; }

  // External file stores are created lazily under `external_root`.
  void set_external_root(std::string root) {
    external_root_ = std::move(root);
  }
  const std::string& external_root() const { return external_root_; }
  Result<FileStore*> GetOrCreateFileStore(const std::string& store_name);

 private:
  static std::string Key(const std::string& name);

  std::map<std::string, TableInfo> tables_;
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_;
  std::map<std::string, ObjectTypeDef> object_types_;
  std::map<std::string, OperatorDef> operators_;
  std::map<std::string, IndexTypeDef> indextypes_;

  FunctionRegistry functions_;
  ImplementationRegistry implementations_;

  std::map<std::string, std::unique_ptr<Iot>> iots_;
  std::map<std::string, std::unique_ptr<HeapTable>> index_tables_;
  LobStore lobs_;
  std::string external_root_ = "/tmp/extidx_external";
  std::map<std::string, std::unique_ptr<FileStore>> file_stores_;
};

}  // namespace exi

#endif  // EXTIDX_CATALOG_CATALOG_H_
