#ifndef EXTIDX_CATALOG_CATALOG_H_
#define EXTIDX_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/indextype.h"
#include "core/odci.h"
#include "core/operator_registry.h"
#include "index/builtin_index.h"
#include "index/iot.h"
#include "storage/file_store.h"
#include "storage/heap_table.h"
#include "storage/lob_store.h"
#include "types/datatype.h"
#include "types/schema.h"

namespace exi {

// Per-column statistics gathered by ANALYZE; stored in the dictionary like
// Oracle's DBA_TAB_COLUMNS stats and consumed by the cost-based optimizer.
struct ColumnStats {
  uint64_t distinct_values = 0;
  uint64_t null_count = 0;
  std::optional<Value> min;
  std::optional<Value> max;
};

struct TableStats {
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  // positional against the table schema
  bool analyzed = false;
};

// ---- partitioning (DESIGN.md §7) ----

enum class PartitionMethod { kNone, kRange, kHash };

// One partition: a named slice of the table backed by its own heap segment.
struct PartitionDef {
  std::string name;
  uint32_t segment_id = 0;
  // RANGE only: exclusive upper bound (VALUES LESS THAN); nullopt = MAXVALUE.
  std::optional<Value> upper_bound;
};

// How a table's rows map to partitions.  RANGE partitions are ordered by
// ascending upper bound; HASH partitions are fixed at CREATE TABLE time.
struct PartitionScheme {
  PartitionMethod method = PartitionMethod::kNone;
  std::string key_column;
  size_t key_index = 0;  // position of key_column in the table schema
  std::vector<PartitionDef> partitions;

  bool partitioned() const { return method != PartitionMethod::kNone; }
  const PartitionDef* Find(const std::string& name) const;
  // Routes a partition-key value to its owning partition, or an ORA-14400
  // style error when no RANGE partition's bound admits it.
  Result<const PartitionDef*> Route(const Value& key) const;
  // Deterministic hash bucket for HASH routing and planner pruning.
  static size_t HashBucket(const Value& key, size_t fanout);
};

// Domain-index lifecycle states (docs/fault-tolerance.md).  Mirrors
// Oracle's DBA_INDEXES.STATUS / DBA_IND_PARTITIONS.STATUS for domain
// indexes: a failing cartridge routine marks the index (or one LOCAL
// slice) rather than corrupting the table, and `ALTER INDEX ... REBUILD`
// returns it to VALID.
enum class IndexStatus {
  kValid,       // usable by the planner and maintained by DML
  kInProgress,  // build/rebuild running; scans get an ORA-01502-style error
  kFailed,      // deferred-policy maintenance failure; contents stale
  kUnusable,    // rebuild itself failed; storage state unknown
};

// "VALID" / "IN_PROGRESS" / "FAILED" / "UNUSABLE".
const char* IndexStatusName(IndexStatus status);

// One partition's slice of a LOCAL domain index: a dedicated ODCIIndex
// implementation instance whose storage objects were created with the
// suffixed index name `<index>#<partition>` (cartridge-authors-guide.md).
struct LocalIndexPartition {
  std::string partition_name;
  uint32_t segment_id = 0;
  std::shared_ptr<OdciIndex> impl;
  IndexStatus status = IndexStatus::kValid;
};

// Dictionary record for an index (built-in or domain).
struct IndexInfo {
  std::string name;
  std::string table;
  std::vector<std::string> columns;

  // Built-in index: non-null access structure.
  std::unique_ptr<BuiltinIndex> builtin;

  // Domain index: indextype name, uninterpreted PARAMETERS string, and the
  // ODCIIndex implementation instance managing this index.
  std::string indextype;
  std::string parameters;
  std::shared_ptr<OdciIndex> domain_impl;
  std::shared_ptr<OdciStats> domain_stats;  // may be null

  // LOCAL domain index: one implementation instance per partition, in
  // partition order; `domain_impl` is null and per-partition storage is
  // addressed via ImplForSegment().
  std::vector<LocalIndexPartition> local_parts;

  // Lifecycle state (docs/fault-tolerance.md).  For LOCAL indexes the
  // per-slice statuses are authoritative and `status` only reflects
  // whole-index transitions (CREATE/REBUILD without a PARTITION clause);
  // use effective_status() for display.
  IndexStatus status = IndexStatus::kValid;
  std::string last_error;   // most recent failure that changed the status
  uint64_t retries = 0;     // guard retry attempts charged to this index

  bool is_local() const { return !local_parts.empty(); }
  bool is_domain() const { return domain_impl != nullptr || is_local(); }

  // Worst state across the index and (for LOCAL) its slices, in severity
  // order UNUSABLE > FAILED > IN_PROGRESS > VALID.
  IndexStatus effective_status() const {
    IndexStatus worst = status;
    auto sev = [](IndexStatus s) {
      switch (s) {
        case IndexStatus::kValid: return 0;
        case IndexStatus::kInProgress: return 1;
        case IndexStatus::kFailed: return 2;
        case IndexStatus::kUnusable: return 3;
      }
      return 0;
    };
    for (const LocalIndexPartition& p : local_parts) {
      if (sev(p.status) > sev(worst)) worst = p.status;
    }
    return worst;
  }
  size_t failed_slices() const {
    size_t n = 0;
    for (const LocalIndexPartition& p : local_parts) {
      if (p.status != IndexStatus::kValid) ++n;
    }
    return n;
  }

  // Any implementation instance (global, or first partition's): valid for
  // capability probes and trace labels, which are uniform across partitions.
  OdciIndex* AnyImpl() const {
    return domain_impl ? domain_impl.get()
                       : (local_parts.empty() ? nullptr
                                              : local_parts.front().impl.get());
  }
  // The partition slice owning heap segment `segment`, or nullptr.
  const LocalIndexPartition* PartForSegment(uint32_t segment) const {
    for (const LocalIndexPartition& p : local_parts) {
      if (p.segment_id == segment) return &p;
    }
    return nullptr;
  }
  LocalIndexPartition* PartForSegment(uint32_t segment) {
    for (LocalIndexPartition& p : local_parts) {
      if (p.segment_id == segment) return &p;
    }
    return nullptr;
  }

  // Metadata bundle passed into every ODCI routine for this index.
  OdciIndexInfo ToOdciInfo(const Schema& table_schema) const;
  // Same, but named `<index>#<partition>` so a cartridge derives distinct
  // storage names per partition slice.
  OdciIndexInfo ToOdciInfoForPartition(const Schema& table_schema,
                                       const std::string& partition) const;
};

// Dictionary record for a table plus the names of its indexes.
struct TableInfo {
  std::unique_ptr<HeapTable> heap;
  std::vector<std::string> index_names;
  TableStats stats;
  PartitionScheme partitioning;  // method == kNone for ordinary tables
};

// The data dictionary (§2: operators and indextypes are "top level schema
// objects").  Owns every schema object and the cartridge-visible storage
// namespaces (IOTs, index-data heap tables, LOB store, external file
// stores).  Name lookups are case-insensitive, as in SQL.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // ---- tables ----
  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);  // caller drops indexes first
  Result<HeapTable*> GetTable(const std::string& name);
  Result<const HeapTable*> GetTable(const std::string& name) const;
  Result<TableInfo*> GetTableInfo(const std::string& name);
  bool TableExists(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // ---- object types ----
  Status RegisterObjectType(ObjectTypeDef def);
  Result<const ObjectTypeDef*> GetObjectType(const std::string& name) const;

  // ---- operators ----
  Status CreateOperator(OperatorDef def);
  Status DropOperator(const std::string& name);
  Result<const OperatorDef*> GetOperator(const std::string& name) const;
  bool OperatorExists(const std::string& name) const;
  std::vector<const OperatorDef*> Operators() const;

  // ---- indextypes ----
  Status CreateIndexType(IndexTypeDef def);
  Status DropIndexType(const std::string& name);
  Result<const IndexTypeDef*> GetIndexType(const std::string& name) const;
  std::vector<const IndexTypeDef*> IndexTypes() const;

  // ---- indexes ----
  Status AddIndex(std::unique_ptr<IndexInfo> info);
  Status RemoveIndex(const std::string& name);
  Result<IndexInfo*> GetIndex(const std::string& name);
  bool IndexExists(const std::string& name) const;
  // All indexes on `table`; optionally only those covering `column` as the
  // leading indexed column.
  std::vector<IndexInfo*> IndexesOnTable(const std::string& table);
  std::vector<const IndexInfo*> Indexes() const;
  std::vector<IndexInfo*> IndexesOnColumn(const std::string& table,
                                          const std::string& column);

  // ---- registries (cartridge developer hooks) ----
  FunctionRegistry& functions() { return functions_; }
  const FunctionRegistry& functions() const { return functions_; }
  ImplementationRegistry& implementations() { return implementations_; }
  const ImplementationRegistry& implementations() const {
    return implementations_;
  }

  // ---- cartridge index-data storage namespaces ----
  Status CreateIot(const std::string& name, Schema schema, size_t key_cols);
  Status DropIot(const std::string& name);
  Result<Iot*> GetIot(const std::string& name);
  Result<const Iot*> GetIot(const std::string& name) const;
  bool IotExists(const std::string& name) const;
  std::vector<std::string> IotNames() const;

  Status CreateIndexTable(const std::string& name, Schema schema);
  Status DropIndexTable(const std::string& name);
  Result<HeapTable*> GetIndexTable(const std::string& name);
  bool IndexTableExists(const std::string& name) const;
  std::vector<std::string> IndexTableNames() const;

  LobStore& lobs() { return lobs_; }
  const LobStore& lobs() const { return lobs_; }

  // External file stores are created lazily under `external_root`.
  void set_external_root(std::string root) {
    external_root_ = std::move(root);
  }
  const std::string& external_root() const { return external_root_; }
  Result<FileStore*> GetOrCreateFileStore(const std::string& store_name);

 private:
  static std::string Key(const std::string& name);

  std::map<std::string, TableInfo> tables_;
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_;
  std::map<std::string, ObjectTypeDef> object_types_;
  std::map<std::string, OperatorDef> operators_;
  std::map<std::string, IndexTypeDef> indextypes_;

  FunctionRegistry functions_;
  ImplementationRegistry implementations_;

  std::map<std::string, std::unique_ptr<Iot>> iots_;
  std::map<std::string, std::unique_ptr<HeapTable>> index_tables_;
  LobStore lobs_;
  std::string external_root_ = "/tmp/extidx_external";
  std::map<std::string, std::unique_ptr<FileStore>> file_stores_;
};

}  // namespace exi

#endif  // EXTIDX_CATALOG_CATALOG_H_
