// Documentation lint, run by the `docs-check` build target (and CI):
//
//  1. Every relative markdown link in the repo's *.md files must resolve
//     to an existing file or directory — dead links rot silently.
//  2. The live V$ view schemas (materialized by Database::RefreshPerfViews)
//     must match docs/golden/vdollar_schema.txt, so the schemas documented
//     in docs/observability.md cannot drift from the code.
//
// Usage: docs_check <repo_root>
// Exit 0 = clean; 1 = findings (each printed on its own line).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "engine/connection.h"
#include "storage/heap_table.h"

namespace fs = std::filesystem;

namespace {

// Directories never scanned for markdown.
bool SkippedDir(const fs::path& p) {
  std::string name = p.filename().string();
  return name == ".git" || name == "build" || name.rfind("build", 0) == 0 ||
         name == ".claude";
}

std::vector<fs::path> MarkdownFiles(const fs::path& root) {
  std::vector<fs::path> out;
  std::vector<fs::path> stack = {root};
  while (!stack.empty()) {
    fs::path dir = stack.back();
    stack.pop_back();
    for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
      if (e.is_directory()) {
        if (!SkippedDir(e.path())) stack.push_back(e.path());
      } else if (e.path().extension() == ".md") {
        out.push_back(e.path());
      }
    }
  }
  return out;
}

// Extracts markdown link targets `](target)` from one line.  Good enough
// for this repo's hand-written docs; external and intra-page links are
// the caller's job to filter.
std::vector<std::string> LinkTargets(const std::string& line) {
  std::vector<std::string> out;
  size_t pos = 0;
  while ((pos = line.find("](", pos)) != std::string::npos) {
    size_t start = pos + 2;
    size_t end = line.find(')', start);
    if (end == std::string::npos) break;
    out.push_back(line.substr(start, end - start));
    pos = end + 1;
  }
  return out;
}

bool IsExternal(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0 || target.empty() ||
         target[0] == '#';
}

int CheckLinks(const fs::path& root) {
  int findings = 0;
  for (const fs::path& md : MarkdownFiles(root)) {
    std::ifstream in(md);
    std::string line;
    size_t lineno = 0;
    bool in_code_fence = false;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.rfind("```", 0) == 0) in_code_fence = !in_code_fence;
      if (in_code_fence) continue;
      for (std::string target : LinkTargets(line)) {
        if (IsExternal(target)) continue;
        size_t hash = target.find('#');
        if (hash != std::string::npos) target.resize(hash);
        if (target.empty()) continue;
        fs::path resolved = md.parent_path() / target;
        if (!fs::exists(resolved)) {
          std::printf("%s:%zu: dead link: %s\n",
                      fs::relative(md, root).string().c_str(), lineno,
                      target.c_str());
          ++findings;
        }
      }
    }
  }
  return findings;
}

// Renders the live perf-view schemas in the golden-file format.
std::string LiveVdollarSchemas(exi::Database* db) {
  std::ostringstream os;
  for (const char* view : {"v$odci_calls", "v$storage_metrics",
                           "v$partitions", "v$domain_indexes"}) {
    os << view << "\n";
    exi::Result<exi::HeapTable*> table = db->catalog().GetTable(view);
    if (!table.ok()) {
      os << "  <missing: " << table.status().ToString() << ">\n";
      continue;
    }
    const exi::Schema& schema = (*table)->schema();
    for (size_t i = 0; i < schema.size(); ++i) {
      const exi::Column& col = schema.column(i);
      os << "  " << col.name << " " << col.type.ToString() << "\n";
    }
  }
  // V$STORAGE_METRICS is a (metric, value) pivot, so its *rows* are the
  // schema that docs/observability.md documents.  Emit the counter names
  // too: adding or renaming a StorageMetrics counter then forces a golden
  // (and docs) update.
  os << "v$storage_metrics rows\n";
  exi::ForEachMetric(exi::StorageMetrics{},
                     [&](const char* name, uint64_t) {
                       os << "  " << name << "\n";
                     });
  return os.str();
}

int CheckVdollarGolden(const fs::path& root) {
  fs::path golden_path = root / "docs" / "golden" / "vdollar_schema.txt";
  std::ifstream in(golden_path);
  if (!in) {
    std::printf("missing golden file: docs/golden/vdollar_schema.txt\n");
    return 1;
  }
  std::ostringstream golden;
  golden << in.rdbuf();

  exi::Database db;
  exi::Status st = db.RefreshPerfViews();
  if (!st.ok()) {
    std::printf("RefreshPerfViews failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::string live = LiveVdollarSchemas(&db);
  if (live != golden.str()) {
    std::printf(
        "V$ schema drift: docs/golden/vdollar_schema.txt no longer matches "
        "Database::RefreshPerfViews.\n---- golden ----\n%s---- live ----\n%s",
        golden.str().c_str(), live.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: docs_check <repo_root>\n");
    return 2;
  }
  fs::path root = argv[1];
  int findings = CheckLinks(root) + CheckVdollarGolden(root);
  if (findings == 0) {
    std::printf("docs-check: OK\n");
    return 0;
  }
  std::printf("docs-check: %d finding(s)\n", findings);
  return 1;
}
